//===- obs/HttpEndpoint.h - Live introspection scrape server ----*- C++ -*-===//
///
/// \file
/// A small, dependency-free HTTP/1.1 server that turns the observability
/// stack from a flight recorder into live instrumentation. One dedicated
/// thread runs a blocking poll() loop over a loopback listener and a
/// bounded set of connections, serving:
///
///   GET /metrics       Prometheus text of collectMetrics() — the same
///                      pull-on-demand path the file exporters use, so a
///                      scrape mid-run sees live counters, not the atexit
///                      dump.
///   GET /debug/traces  JSON snapshot of the span ring installed by a
///                      'trace:ring' spec entry (?limit=N keeps the
///                      newest N, ?span=SUBSTR filters by span name).
///   GET /debug/querylog  The wide-event query log ring, newest last
///                      (?domain=, ?outcome=, ?min_ms=MS filters;
///                      ?limit=N keeps the newest N).
///   GET /debug/query/<trace-id>  One query by 32-hex trace id: its
///                      query-log record joined with every retained
///                      span of that trace from the span ring.
///   GET /healthz       200 while the registered service is healthy,
///                      503 while any domain circuit breaker is open.
///   GET /readyz        200 once warmup completed and a domain is
///                      registered; 503 before that.
///   GET /statusz       One JSON snapshot: build info, uptime, endpoint
///                      counters, and the registered service's status
///                      (breaker rungs, queue depth, shed count, cache
///                      hit rates and byte usage).
///   POST /v1/synthesize  The query data plane: a JSON body
///                      {"query":..., "domain":..., "budget_ms":...}
///                      submitted to the registered SynthesizeProvider.
///                      The reply is *deferred*: the provider enqueues
///                      the query and answers through a callback, so the
///                      poll thread never blocks on synthesis — the
///                      connection parks until the answer (or its
///                      deadline) arrives. Body handling is bounded:
///                      missing Content-Length is 411, duplicate or
///                      malformed is 400, larger than MaxBodyBytes is
///                      413, and the per-connection trickle deadline
///                      covers body reads exactly as it covers heads.
///
/// Anything else is 404, non-GET methods are 405 (POST is accepted only
/// on /v1/synthesize), and a malformed request line is 400 — the parser
/// is strict (single spaces, three tokens, HTTP/1.x) because this
/// endpoint faces scrapers and programmatic clients, not browsers.
///
/// Security posture: binds 127.0.0.1 by default, serves read-only
/// snapshots, never echoes request content, caps header size and
/// concurrent connections, and closes every connection after one
/// response. Exposing it beyond loopback takes two explicit operator
/// decisions: a non-loopback Options::BindAddress *and* the
/// `insecure-bind` entry in DGGT_METRICS — start() refuses the former
/// without the latter, so a config typo cannot publish the endpoint.
///
/// The endpoint reaches the service layer only through the two
/// std::function providers below — obs sits *under* the service
/// libraries, so SynthesisService/AsyncSynthesisService register
/// themselves at construction instead of being linked in. It serves
/// /metrics and /debug/traces with no providers at all.
///
/// Wired up either by the `http:PORT` DGGT_METRICS spec entry (global
/// endpoint, see httpEndpoint()) or by ServiceOptions::HttpPort (owned
/// by that service). Port 0 binds an ephemeral port; port() reports the
/// actual one, and Options::Announce prints it to stdout for scripts.
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_OBS_HTTPENDPOINT_H
#define DGGT_OBS_HTTPENDPOINT_H

#include "obs/Trace.h"
#include "support/Clock.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

namespace dggt::obs {

/// What a health provider reports; maps onto /healthz and /readyz.
struct HealthStatus {
  bool Ready = true;   ///< Warmed up and able to take traffic.
  bool Healthy = true; ///< No domain circuit breaker is open.
  std::string Detail;  ///< Short human-readable note for the body.
};

/// One parsed POST /v1/synthesize request.
struct SynthesizeRequest {
  std::string Domain;
  std::string Query;
  uint64_t BudgetMs = 0; ///< 0 = the domain's configured budget.
  /// Per-query trace context, minted by the endpoint (honoring an
  /// inbound W3C `traceparent` header) with ParentSpan set to the
  /// request's root span. Providers thread it through the router/async
  /// tiers so every span of the query shares one trace id.
  QueryContext Ctx;
};

/// What a synthesize provider answers (already serialized; the endpoint
/// adds the HTTP framing).
struct SynthesizeResponse {
  int Code = 200;
  std::string Body; ///< JSON body.
  /// >0 adds a Retry-After header (429/503 shed-and-retry guidance).
  unsigned RetryAfterSeconds = 0;
};

/// Live introspection server; see the file comment.
class HttpEndpoint {
public:
  struct Options {
    /// Loopback by default. start() refuses anything outside 127.0.0.0/8
    /// unless DGGT_METRICS contains the `insecure-bind` opt-in.
    std::string BindAddress = "127.0.0.1";
    /// TCP port; 0 asks the kernel for an ephemeral one (see port()).
    uint16_t Port = 0;
    /// Connections beyond this are accepted and immediately closed.
    unsigned MaxConnections = 32;
    /// Request head cap; a client exceeding it gets a 400 and a close.
    size_t MaxRequestBytes = 8 * 1024;
    /// Request *body* cap: a Content-Length above this is refused with
    /// 413 before a single body byte is read.
    size_t MaxBodyBytes = 64 * 1024;
    /// A connection idle longer than this mid-request is dropped. The
    /// same trickle-byte deadline covers head and body reads.
    uint64_t RequestTimeoutMs = 5000;
    /// Ceiling on how long a deferred /v1/synthesize reply may stay in
    /// flight when the request carries no budget_ms; with a budget the
    /// connection parks for budget_ms + RequestTimeoutMs. Either way a
    /// provider that never answers yields a 504, not a leaked socket.
    uint64_t SynthesizeTimeoutMs = 30000;
    /// Time source for connection deadlines; null = the real steady
    /// clock. Tests inject a VirtualClock so trickle/parked timeouts
    /// are deterministic.
    const ClockSource *Clock = nullptr;
    /// Print "dggt-http-endpoint: listening on HOST:PORT" to stdout on
    /// start (scripts curl the ephemeral port; see check-endpoint).
    bool Announce = false;
  };

  /// /healthz + /readyz source. Invoked on the server thread.
  using HealthProvider = std::function<HealthStatus()>;
  /// /statusz source: returns one JSON object (already serialized).
  using StatusProvider = std::function<std::string()>;
  /// Completion callback of one deferred synthesize request. May be
  /// invoked from any thread, including synchronously from inside the
  /// provider; the first invocation wins and later ones are ignored
  /// (the connection has already answered or gone away).
  using SynthesizeReply = std::function<void(SynthesizeResponse)>;
  /// POST /v1/synthesize sink. Invoked on the server thread; must NOT
  /// block on synthesis — it enqueues the query and answers through the
  /// reply callback (an immediate rejection may call it inline).
  using SynthesizeProvider =
      std::function<void(const SynthesizeRequest &, SynthesizeReply)>;

  HttpEndpoint(); ///< Default options (loopback, ephemeral port).
  explicit HttpEndpoint(Options O);
  /// Graceful shutdown: stops accepting, wakes the poll loop, joins.
  ~HttpEndpoint();

  HttpEndpoint(const HttpEndpoint &) = delete;
  HttpEndpoint &operator=(const HttpEndpoint &) = delete;

  /// Binds, listens and spawns the server thread. On failure returns
  /// false with \p Error set and leaves the endpoint stopped; start()
  /// may be retried. Idempotent while running.
  bool start(std::string &Error);

  /// Stops the server thread and closes every socket. Idempotent;
  /// called by the destructor.
  void stop();

  bool running() const { return Running.load(std::memory_order_acquire); }

  /// The bound port (resolves an ephemeral request); 0 until started.
  uint16_t port() const { return BoundPort.load(std::memory_order_acquire); }

  const Options &options() const { return Opts; }

  /// Installs (or, with nullptr, removes) the /healthz-/readyz and
  /// /statusz sources, returning a registration token (0 for a null
  /// provider). Providers are invoked under an internal mutex, so after
  /// a clear returns no further calls are in flight — owners clear
  /// their provider before destruction.
  uint64_t setHealthProvider(HealthProvider P);
  uint64_t setStatusProvider(StatusProvider P);
  /// Same contract for the /v1/synthesize sink; without one the route
  /// answers 503.
  uint64_t setSynthesizeProvider(SynthesizeProvider P);

  /// Removes the matching provider only if \p Token is still the live
  /// registration. A stale owner's clear is a no-op, so when providers
  /// are replaced ("last registered wins") destroying the older owner
  /// cannot wipe the newer owner's registration. Token 0 is ignored.
  void clearHealthProvider(uint64_t Token);
  void clearStatusProvider(uint64_t Token);
  void clearSynthesizeProvider(uint64_t Token);

  /// Requests answered since start (any status code).
  uint64_t requestsServed() const {
    return Served.load(std::memory_order_relaxed);
  }

private:
  struct Conn;
  struct DeferredState;
  struct Waker;

  /// What processing one connection's buffered bytes decided.
  enum class ReqAction {
    Respond,  ///< A full response is ready; write it and close.
    NeedBody, ///< Head parsed; keep reading until the body is complete.
    Deferred, ///< Handed to the synthesize provider; park the connection.
  };

  void serverLoop();
  /// Parses a complete request head (request line + headers); GET routes
  /// answer immediately, POST /v1/synthesize validates Content-Length
  /// and switches the connection to body reading.
  ReqAction processHead(Conn &C, std::string &Resp);
  /// Runs once the declared body is fully buffered: parses the JSON and
  /// hands the query to the provider (Deferred), or rejects (Respond).
  ReqAction processBody(Conn &C, std::string &Resp);
  /// Counts and frames one response (status line, headers, body).
  /// \p Traceparent, when non-empty, is echoed as a `traceparent`
  /// response header so clients can correlate their answer with
  /// /debug/query/<trace-id>.
  std::string respond(std::string_view Path, int Code,
                      std::string_view ContentType, std::string_view Body,
                      unsigned RetryAfterSeconds = 0,
                      std::string_view Allow = {},
                      std::string_view Traceparent = {});
  std::string dispatch(std::string_view Target, int &Code,
                       std::string &ContentType);

  Options Opts;
  std::atomic<bool> Running{false};
  std::atomic<bool> StopFlag{false};
  std::atomic<uint16_t> BoundPort{0};
  std::atomic<uint64_t> Served{0};
  int ListenFd = -1;
  int WakeFds[2] = {-1, -1}; ///< Self-pipe waking poll() for shutdown.
  /// Shared handle to the wake pipe for deferred-reply callbacks, which
  /// may outlive a stop(): the waker is invalidated before the pipe
  /// closes, so a late reply wakes nobody instead of writing a dead fd.
  std::shared_ptr<Waker> WakeHandle;
  std::thread Server;

  std::mutex ProvidersM;
  HealthProvider Health;
  StatusProvider Status;
  SynthesizeProvider Synthesize;
  uint64_t HealthToken = 0; ///< Live registration ids; 0 = none.
  uint64_t StatusToken = 0;
  uint64_t SynthesizeToken = 0;
  uint64_t NextProviderToken = 1;
};

/// The process-wide endpoint installed by an `http:PORT` DGGT_METRICS
/// spec entry, or null. Service layers register their health/status
/// providers on it at construction.
std::shared_ptr<HttpEndpoint> httpEndpoint();

/// Installs \p Ep as the global endpoint (spec wiring; replaces any
/// previous one, which keeps serving until its owner drops it).
/// Providers registered on the previous endpoint do not migrate:
/// services constructed before the swap keep pointing at the old
/// instance, so re-configure before building services (see the
/// `http:` case in Export.cpp).
void setHttpEndpoint(std::shared_ptr<HttpEndpoint> Ep);

} // namespace dggt::obs

#endif // DGGT_OBS_HTTPENDPOINT_H
