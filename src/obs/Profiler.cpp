//===- obs/Profiler.cpp - In-process sampling profiler --------------------===//

#include "obs/Profiler.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <sched.h>
#include <time.h>

using namespace dggt;
using namespace dggt::obs;

namespace {

/// Ring geometry. 8192 slots × 32 PCs × 8 bytes ≈ 2 MiB, allocated once
/// at the first start() and reused for every later run. At 99 Hz that
/// is ~80 s of continuous samples between reads; /debug/profile reads
/// recycle nothing (the ring persists until the next start()).
constexpr size_t SlotCount = 8192;
constexpr size_t MaxDepth = 32;

/// One captured stack. Len is the publish flag: the handler fills PCs
/// first, then release-stores Len, so a reader that acquire-loads a
/// nonzero Len sees a complete stack.
struct Slot {
  void *PCs[MaxDepth];
  std::atomic<uint32_t> Len{0};
};

/// The ring. A plain array behind an acquire-published pointer — the
/// handler never allocates.
std::atomic<Slot *> Ring{nullptr};

/// The profiler the SIGPROF trampoline dispatches to. Set (release)
/// before the timer is armed; the singleton is leaked so the pointer
/// never dangles.
std::atomic<Profiler *> GProf{nullptr};

uint64_t monotonicNs() {
  timespec TS;
  clock_gettime(CLOCK_MONOTONIC, &TS);
  return static_cast<uint64_t>(TS.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(TS.tv_nsec);
}

extern "C" void dggtOnSigprof(int, siginfo_t *, void *) {
  // The handler may interrupt arbitrary code mid-syscall; preserve errno
  // like any well-behaved signal handler.
  int SavedErrno = errno;
  if (Profiler *P = GProf.load(std::memory_order_acquire))
    P->handleSignal();
  errno = SavedErrno;
}

/// Best-effort name for a sampled address: demangled symbol when dladdr
/// finds one, "module+0xoff" when only the object is known, "0xaddr" as
/// the last resort. Runs on the control thread only.
std::string symbolize(void *Addr) {
  Dl_info Info;
  char Buf[512];
  if (dladdr(Addr, &Info) && Info.dli_sname) {
    int Status = 0;
    char *Demangled =
        abi::__cxa_demangle(Info.dli_sname, nullptr, nullptr, &Status);
    if (Status == 0 && Demangled) {
      std::string Out(Demangled);
      std::free(Demangled);
      return Out;
    }
    if (Demangled)
      std::free(Demangled);
    return Info.dli_sname;
  }
  if (dladdr(Addr, &Info) && Info.dli_fname) {
    const char *Base = std::strrchr(Info.dli_fname, '/');
    Base = Base ? Base + 1 : Info.dli_fname;
    std::snprintf(Buf, sizeof(Buf), "%s+0x%zx", Base,
                  reinterpret_cast<size_t>(Addr) -
                      reinterpret_cast<size_t>(Info.dli_fbase));
    return Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "0x%zx", reinterpret_cast<size_t>(Addr));
  return Buf;
}

} // namespace

Profiler &Profiler::instance() {
  // Leaked, like the metrics registry: the SIGPROF trampoline must never
  // race a static destructor.
  static Profiler *P = new Profiler();
  return *P;
}

Profiler &dggt::obs::profiler() { return Profiler::instance(); }

void Profiler::handleSignal() {
  uint64_t T0 = monotonicNs();
  if (!Armed.load(std::memory_order_acquire) ||
      Paused.load(std::memory_order_relaxed))
    return;
  if (DeadlineNs && T0 > DeadlineNs)
    return; // Expired; the next control-plane call disarms the timer.
  // Announce activity, then re-check Paused so a reader that set Paused
  // and saw Active==0 cannot miss us (the store/load pair on each side
  // forms the classic two-flag handshake).
  Active.fetch_add(1, std::memory_order_acquire);
  if (Paused.load(std::memory_order_acquire)) {
    Active.fetch_sub(1, std::memory_order_release);
    return;
  }
  Slot *Slots = Ring.load(std::memory_order_acquire);
  uint64_t Idx = Next.fetch_add(1, std::memory_order_relaxed);
  if (!Slots || Idx >= SlotCount) {
    Dropped.fetch_add(1, std::memory_order_relaxed);
  } else {
    Slot &S = Slots[Idx];
    int N = backtrace(S.PCs, MaxDepth);
    S.Len.store(N > 0 ? static_cast<uint32_t>(N) : 0,
                std::memory_order_release);
    Samples.fetch_add(1, std::memory_order_relaxed);
  }
  Active.fetch_sub(1, std::memory_order_release);
  HandlerNs.fetch_add(monotonicNs() - T0, std::memory_order_relaxed);
}

Profiler::StartStatus Profiler::start(unsigned Hz, double Seconds) {
  if (Hz == 0 || Hz > 1000)
    return StartStatus::BadRate;
  std::lock_guard<std::mutex> L(ControlM);
  maybeExpireLocked();
  if (Armed.load(std::memory_order_relaxed))
    return StartStatus::AlreadyRunning;

  if (!RingReady) {
    Ring.store(new Slot[SlotCount], std::memory_order_release);
    RingReady = true;
  }
  // Prime backtrace: its first call may dlopen libgcc (malloc, locks).
  // Do it here, on the control thread, so the handler never does.
  void *Prime[4];
  backtrace(Prime, 4);

  // Recycle the ring for this run.
  Slot *Slots = Ring.load(std::memory_order_relaxed);
  uint64_t Filled = Next.load(std::memory_order_relaxed);
  if (Filled > SlotCount)
    Filled = SlotCount;
  for (uint64_t I = 0; I < Filled; ++I)
    Slots[I].Len.store(0, std::memory_order_relaxed);
  Next.store(0, std::memory_order_relaxed);
  Paused.store(false, std::memory_order_relaxed);
  HzVal.store(Hz, std::memory_order_relaxed);
  DeadlineNs = Seconds > 0
                   ? monotonicNs() +
                         static_cast<uint64_t>(Seconds * 1e9)
                   : 0;
  GProf.store(this, std::memory_order_release);

  if (!HandlerInstalled) {
    // Installed once and left in place forever: restoring the default
    // action in stop() would let one straggler SIGPROF (queued before
    // timer_delete) terminate the process. A disarmed handler is a
    // handful of loads.
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_sigaction = dggtOnSigprof;
    SA.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&SA.sa_mask);
    if (sigaction(SIGPROF, &SA, nullptr) != 0)
      return StartStatus::Error;
    HandlerInstalled = true;
  }

  sigevent SEV;
  std::memset(&SEV, 0, sizeof(SEV));
  SEV.sigev_notify = SIGEV_SIGNAL;
  SEV.sigev_signo = SIGPROF;
  // CPU-time clock first: samples track where cycles go and the rate
  // self-throttles when idle. Fall back to wall time where the kernel
  // refuses a process-CPU timer.
  if (timer_create(CLOCK_PROCESS_CPUTIME_ID, &SEV, &Timer) != 0 &&
      timer_create(CLOCK_MONOTONIC, &SEV, &Timer) != 0)
    return StartStatus::Error;

  itimerspec IT;
  std::memset(&IT, 0, sizeof(IT));
  long PeriodNs = 1000000000L / static_cast<long>(Hz);
  IT.it_interval.tv_sec = PeriodNs / 1000000000L;
  IT.it_interval.tv_nsec = PeriodNs % 1000000000L;
  IT.it_value = IT.it_interval;
  StartWallNs = monotonicNs();
  Armed.store(true, std::memory_order_release);
  if (timer_settime(Timer, 0, &IT, nullptr) != 0) {
    Armed.store(false, std::memory_order_release);
    timer_delete(Timer);
    return StartStatus::Error;
  }
  return StartStatus::Started;
}

bool Profiler::stopLocked() {
  if (!Armed.load(std::memory_order_relaxed))
    return false;
  Armed.store(false, std::memory_order_release);
  timer_delete(Timer);
  // Drain handlers already past the Armed check before touching shared
  // control state again.
  while (Active.load(std::memory_order_acquire) != 0)
    sched_yield();
  WallNs.fetch_add(monotonicNs() - StartWallNs, std::memory_order_relaxed);
  DeadlineNs = 0;
  return true;
}

void Profiler::maybeExpireLocked() {
  if (Armed.load(std::memory_order_relaxed) && DeadlineNs &&
      monotonicNs() > DeadlineNs)
    stopLocked();
}

bool Profiler::stop() {
  std::lock_guard<std::mutex> L(ControlM);
  maybeExpireLocked();
  return stopLocked();
}

bool Profiler::running() {
  std::lock_guard<std::mutex> L(ControlM);
  maybeExpireLocked();
  return Armed.load(std::memory_order_relaxed);
}

uint64_t Profiler::wallNanosTotal() const {
  uint64_t Closed = WallNs.load(std::memory_order_relaxed);
  // Include the in-progress run so the overhead ratio is meaningful
  // while profiling (the common case for the continuous prof:HZ mode).
  if (Armed.load(std::memory_order_acquire))
    Closed += monotonicNs() - StartWallNs;
  return Closed;
}

std::string Profiler::foldedStacks() {
  std::lock_guard<std::mutex> L(ControlM);
  maybeExpireLocked();
  Slot *Slots = Ring.load(std::memory_order_acquire);
  if (!Slots)
    return std::string();

  // Quiesce: stop new samples, wait out in-flight handlers, then the
  // ring is ours to read.
  Paused.store(true, std::memory_order_release);
  while (Active.load(std::memory_order_acquire) != 0)
    sched_yield();

  uint64_t Filled = Next.load(std::memory_order_relaxed);
  if (Filled > SlotCount)
    Filled = SlotCount;

  // Aggregate identical raw stacks first so each unique address is
  // symbolized exactly once, however many samples share it.
  std::map<std::vector<void *>, uint64_t> Agg;
  for (uint64_t I = 0; I < Filled; ++I) {
    uint32_t Len = Slots[I].Len.load(std::memory_order_acquire);
    if (Len == 0)
      continue;
    // Skip the two leading frames — the handler itself and the kernel's
    // signal trampoline — and reverse to root-first folded order.
    std::vector<void *> Stack;
    for (uint32_t F = Len; F > 2; --F)
      Stack.push_back(Slots[I].PCs[F - 1]);
    if (!Stack.empty())
      ++Agg[std::move(Stack)];
  }
  Paused.store(false, std::memory_order_release);

  std::map<void *, std::string> Names;
  std::string Out;
  for (const auto &KV : Agg) {
    std::string Line;
    for (void *Addr : KV.first) {
      auto It = Names.find(Addr);
      if (It == Names.end())
        It = Names.emplace(Addr, symbolize(Addr)).first;
      if (!Line.empty())
        Line += ';';
      Line += It->second;
    }
    Out += Line;
    Out += ' ';
    Out += std::to_string(KV.second);
    Out += '\n';
  }
  return Out;
}

void Profiler::resetForTest() {
  std::lock_guard<std::mutex> L(ControlM);
  stopLocked();
  Slot *Slots = Ring.load(std::memory_order_relaxed);
  if (Slots) {
    uint64_t Filled = Next.load(std::memory_order_relaxed);
    if (Filled > SlotCount)
      Filled = SlotCount;
    for (uint64_t I = 0; I < Filled; ++I)
      Slots[I].Len.store(0, std::memory_order_relaxed);
  }
  Next.store(0, std::memory_order_relaxed);
  Samples.store(0, std::memory_order_relaxed);
  Dropped.store(0, std::memory_order_relaxed);
  HandlerNs.store(0, std::memory_order_relaxed);
  WallNs.store(0, std::memory_order_relaxed);
  HzVal.store(0, std::memory_order_relaxed);
}
