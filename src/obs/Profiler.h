//===- obs/Profiler.h - In-process sampling profiler ------------*- C++ -*-===//
///
/// \file
/// A dependency-free, in-process sampling wall/CPU profiler (DESIGN.md
/// §16): a POSIX interval timer (`timer_create` on the process CPU
/// clock, falling back to CLOCK_MONOTONIC) drives SIGPROF at a
/// configurable rate; the signal handler captures a raw return-address
/// stack with `backtrace()` into a lock-free, preallocated sample ring
/// and returns. Everything expensive — symbolization via `dladdr`,
/// demangling, aggregation into collapsed/folded stacks — happens
/// lazily, off the signal path, when someone asks for the profile
/// (`GET /debug/profile` or `foldedStacks()`).
///
/// Signal-safety rules (binding for the handler):
///  - no allocation, no locks, no iostreams, no string building;
///  - only lock-free atomics, `clock_gettime`, and `backtrace()`
///    (primed once in start() so its lazy libgcc load happens on the
///    control thread, not under a signal);
///  - slot claim is a single fetch_add; a full ring drops the sample
///    and counts it instead of blocking.
///
/// The profiler is armed either by the `prof:HZ` entry of DGGT_METRICS
/// (continuous, whole-process-lifetime) or on demand via
/// `POST /debug/profile/start?seconds=&hz=`. It keeps cumulative
/// self-accounting counters — samples, drops, nanoseconds spent inside
/// the handler, and profiled wall nanoseconds — exported as
/// dggt_profiler_* metrics so the overhead claim (<2% of wall time at
/// 99 Hz) is itself measured, not assumed.
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_OBS_PROFILER_H
#define DGGT_OBS_PROFILER_H

#include <atomic>
#include <cstdint>
#include <ctime>
#include <mutex>
#include <string>

namespace dggt::obs {

/// Process-wide sampling profiler. One instance (leaked singleton,
/// `profiler()`); start/stop are serialized by an internal mutex, the
/// signal handler touches only lock-free state.
class Profiler {
public:
  /// Why start() did or did not arm the timer. Maps onto the HTTP
  /// surface: Started→200, AlreadyRunning→409, BadRate→400,
  /// Error→500.
  enum class StartStatus { Started, AlreadyRunning, BadRate, Error };

  static Profiler &instance();

  /// Arms SIGPROF sampling at \p Hz (1..1000). \p Seconds > 0 sets a
  /// deadline after which the run lazily expires (checked by running(),
  /// start(), stop() and foldedStacks() — there is no watcher thread);
  /// 0 means "until stop()". A new run recycles the sample ring; the
  /// cumulative dggt_profiler_* counters keep accumulating across runs.
  StartStatus start(unsigned Hz, double Seconds);

  /// Disarms the timer and waits for in-flight handlers to drain.
  /// Returns false when the profiler was not running.
  bool stop();

  /// True while armed (after lazily expiring a past-deadline run).
  bool running();

  /// Sampling rate of the current (or most recent) run.
  unsigned hz() const { return HzVal.load(std::memory_order_relaxed); }

  /// Aggregates the ring into collapsed/folded stacks — one line per
  /// unique stack, root-first frames joined by ';', then a space and
  /// the sample count ("a;b;c 42"). Symbolizes via dladdr (demangled
  /// when possible, "module+0xoff" otherwise). Safe while running:
  /// sampling pauses for the duration of the read and resumes after.
  /// Empty string when the ring holds no samples.
  std::string foldedStacks();

  /// Cumulative across all runs since process start (or resetForTest).
  uint64_t samplesTotal() const {
    return Samples.load(std::memory_order_relaxed);
  }
  /// Samples lost to a full ring.
  uint64_t droppedTotal() const {
    return Dropped.load(std::memory_order_relaxed);
  }
  /// Nanoseconds spent inside the signal handler (the profiler's own
  /// cost; the numerator of the overhead ratio).
  uint64_t handlerNanosTotal() const {
    return HandlerNs.load(std::memory_order_relaxed);
  }
  /// Profiled wall nanoseconds (the denominator): closed runs plus the
  /// in-progress run, if any.
  uint64_t wallNanosTotal() const;

  /// Stops if running, clears the ring and zeroes every cumulative
  /// counter. Tests only.
  void resetForTest();

  /// Signal-handler body; public only for the SIGPROF trampoline.
  void handleSignal();

private:
  Profiler() = default;

  /// Callers hold ControlM.
  bool stopLocked();
  void maybeExpireLocked();

  // --- control-plane state (under ControlM) ---
  std::mutex ControlM;
  bool HandlerInstalled = false;
  bool RingReady = false;
  timer_t Timer{};
  uint64_t StartWallNs = 0;  ///< monotonicNs() at the last start().
  uint64_t DeadlineNs = 0;   ///< 0 = run until stop().

  // --- hot state (signal handler, lock-free) ---
  std::atomic<bool> Armed{false};
  std::atomic<bool> Paused{false};
  std::atomic<uint32_t> Active{0}; ///< Handlers currently inside.
  std::atomic<uint64_t> Next{0};   ///< Ring claim index (monotonic).
  std::atomic<unsigned> HzVal{0};
  std::atomic<uint64_t> Samples{0};
  std::atomic<uint64_t> Dropped{0};
  std::atomic<uint64_t> HandlerNs{0};
  std::atomic<uint64_t> WallNs{0}; ///< Closed runs only; see wallNanosTotal().
};

/// Shorthand for the process profiler.
Profiler &profiler();

} // namespace dggt::obs

#endif // DGGT_OBS_PROFILER_H
