//===- obs/HttpEndpoint.cpp - Live introspection scrape server ------------===//

#include "obs/HttpEndpoint.h"

#include "obs/BuildInfo.h"
#include "obs/Export.h"
#include "obs/Metrics.h"
#include "obs/Profiler.h"
#include "obs/QueryLog.h"
#include "support/Arena.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <algorithm>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

using namespace dggt;
using namespace dggt::obs;

namespace {

const char *statusText(int Code) {
  switch (Code) {
  case 200:
    return "OK";
  case 400:
    return "Bad Request";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  case 409:
    return "Conflict";
  case 411:
    return "Length Required";
  case 413:
    return "Content Too Large";
  case 429:
    return "Too Many Requests";
  case 502:
    return "Bad Gateway";
  case 503:
    return "Service Unavailable";
  case 504:
    return "Gateway Timeout";
  }
  return "Internal Server Error";
}

bool setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

/// True when the DGGT_METRICS spec carries the explicit `insecure-bind`
/// entry — the operator's written consent to expose the unauthenticated
/// introspection surface beyond loopback. Read per start() call so a
/// test can flip it; the spec parser in Export.cpp accepts the entry as
/// a no-op (it is consumed here, not there).
bool insecureBindAllowed() {
  const char *Env = std::getenv("DGGT_METRICS");
  if (!Env)
    return false;
  for (const std::string &Item : split(Env, ","))
    if (trim(Item) == "insecure-bind")
      return true;
  return false;
}

/// Decodes %XX and '+' in a query-string component; invalid escapes pass
/// through verbatim (the filters they feed are substring matches, not
/// security decisions).
std::string urlDecode(std::string_view S) {
  auto Hex = [](char C) -> int {
    if (C >= '0' && C <= '9')
      return C - '0';
    if (C >= 'a' && C <= 'f')
      return C - 'a' + 10;
    if (C >= 'A' && C <= 'F')
      return C - 'A' + 10;
    return -1;
  };
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] == '+') {
      Out += ' ';
    } else if (S[I] == '%' && I + 2 < S.size() && Hex(S[I + 1]) >= 0 &&
               Hex(S[I + 2]) >= 0) {
      Out += static_cast<char>(Hex(S[I + 1]) * 16 + Hex(S[I + 2]));
      I += 2;
    } else {
      Out += S[I];
    }
  }
  return Out;
}

/// Splits "k1=v1&k2=v2" into decoded pairs.
std::vector<std::pair<std::string, std::string>>
parseQuery(std::string_view Query) {
  std::vector<std::pair<std::string, std::string>> Out;
  for (const std::string &Item : split(Query, "&")) {
    if (Item.empty())
      continue;
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos)
      Out.emplace_back(urlDecode(Item), "");
    else
      Out.emplace_back(urlDecode(Item.substr(0, Eq)),
                       urlDecode(Item.substr(Eq + 1)));
  }
  return Out;
}

/// Handles POST /debug/profile/start|stop. Status mapping: 200 on a
/// state change, 409 when the request conflicts with the current state
/// (already running / not running), 400 for unparseable knobs, 500 when
/// the OS refuses the timer.
std::string profilerControl(std::string_view Path, std::string_view Query,
                            int &Code) {
  if (Path == "/debug/profile/stop") {
    if (profiler().stop()) {
      Code = 200;
      return "{\"status\":\"stopped\",\"samples_total\":" +
             std::to_string(profiler().samplesTotal()) + "}";
    }
    Code = 409;
    return "{\"error\":\"profiler is not running\"}";
  }
  uint64_t Hz = 99; // The classic just-off-100 rate: avoids lockstep
                    // with 10ms-periodic work.
  uint64_t Seconds = 0;
  for (const auto &[K, V] : parseQuery(Query)) {
    if (K == "hz") {
      std::optional<uint64_t> N = parseUnsigned(V);
      if (!N || *N == 0 || *N > 1000) {
        Code = 400;
        return "{\"error\":\"hz must be an integer in 1-1000\"}";
      }
      Hz = *N;
    } else if (K == "seconds") {
      std::optional<uint64_t> N = parseUnsigned(V);
      if (!N || *N == 0 || *N > 86400) {
        Code = 400;
        return "{\"error\":\"seconds must be an integer in 1-86400\"}";
      }
      Seconds = *N;
    }
  }
  switch (profiler().start(static_cast<unsigned>(Hz),
                           static_cast<double>(Seconds))) {
  case Profiler::StartStatus::Started:
    Code = 200;
    return "{\"status\":\"started\",\"hz\":" + std::to_string(Hz) +
           ",\"seconds\":" + std::to_string(Seconds) + "}";
  case Profiler::StartStatus::AlreadyRunning:
    Code = 409;
    return "{\"error\":\"profiler already running; stop it first\"}";
  case Profiler::StartStatus::BadRate:
    Code = 400;
    return "{\"error\":\"hz must be an integer in 1-1000\"}";
  case Profiler::StartStatus::Error:
    break;
  }
  Code = 500;
  return "{\"error\":\"cannot arm the profiling timer\"}";
}

/// One (name, value) the explainer ranks. The vocabulary is the record's
/// latency fields plus the DP-core cost vector — every number a slow
/// query could blame.
struct ExplainMetric {
  const char *Name;
  double Value;
};

std::vector<ExplainMetric> explainMetrics(const QueryLogRecord &R) {
  std::vector<ExplainMetric> M = {
      {"total_ms", R.TotalMs},
      {"queue_wait_ms", R.QueueWaitMs},
      {"stage_parse_ms", R.StageMs[0]},
      {"stage_prune_ms", R.StageMs[1]},
      {"stage_word_to_api_ms", R.StageMs[2]},
      {"stage_edge_to_path_ms", R.StageMs[3]},
  };
  if (R.Cost.Populated) {
    M.push_back({"path_searches", double(R.Cost.PathSearches)});
    M.push_back({"node_visits", double(R.Cost.NodeVisits)});
    M.push_back({"in_edge_scans", double(R.Cost.InEdgeScans)});
    M.push_back({"bitset_words", double(R.Cost.BitsetWordsTouched)});
    M.push_back({"merge_candidates", double(R.Cost.MergeCandidates)});
    M.push_back({"merge_survivors", double(R.Cost.MergeSurvivors)});
    M.push_back({"conflict_checks", double(R.Cost.ConflictChecks)});
    M.push_back({"cgt_fusion_ops", double(R.Cost.CgtFusionOps)});
    M.push_back({"arena_high_water_bytes",
                 double(R.Cost.ArenaHighWaterBytes)});
  }
  return M;
}

/// The slow-query explainer: ranks \p R's latency and cost metrics
/// against its same-domain peers in the querylog ring. For each metric,
/// the percentile rank (share of peers at or below R's value) and the
/// ratio to the peer median; sorted worst-first and capped, so the top
/// line reads "p99.7 in cgt_fusion_ops, 41x domain median".
std::string explainJson(const QueryLogRecord &R) {
  std::vector<QueryLogRecord> Peers = queryLog().snapshot();
  std::erase_if(Peers, [&](const QueryLogRecord &P) {
    return P.Domain != R.Domain;
  });
  std::ostringstream OS;
  OS << "{\"domain_peers\":" << Peers.size() << ",\"ranked\":[";
  if (Peers.empty()) {
    OS << "]}";
    return OS.str();
  }
  struct Ranked {
    const char *Name;
    double Value, Percentile, XMedian;
  };
  std::vector<Ranked> Out;
  for (const ExplainMetric &M : explainMetrics(R)) {
    std::vector<double> Vals;
    Vals.reserve(Peers.size());
    for (const QueryLogRecord &P : Peers)
      for (const ExplainMetric &PM : explainMetrics(P))
        if (std::strcmp(PM.Name, M.Name) == 0)
          Vals.push_back(PM.Value);
    if (Vals.empty())
      continue;
    std::sort(Vals.begin(), Vals.end());
    size_t AtOrBelow =
        std::upper_bound(Vals.begin(), Vals.end(), M.Value) - Vals.begin();
    double Pct = 100.0 * double(AtOrBelow) / double(Vals.size());
    double Median = Vals.size() % 2
                        ? Vals[Vals.size() / 2]
                        : (Vals[Vals.size() / 2 - 1] + Vals[Vals.size() / 2]) / 2;
    double XMed = Median > 0 ? M.Value / Median : (M.Value > 0 ? -1 : 1);
    Out.push_back({M.Name, M.Value, Pct, XMed});
  }
  // Worst offender first: highest percentile, then largest multiple of
  // the median as the tie-break (everything above median ties at p100
  // when the ring is small).
  std::stable_sort(Out.begin(), Out.end(), [](const Ranked &A,
                                              const Ranked &B) {
    if (A.Percentile != B.Percentile)
      return A.Percentile > B.Percentile;
    return A.XMedian > B.XMedian;
  });
  constexpr size_t Cap = 8;
  char Buf[64];
  for (size_t I = 0; I < Out.size() && I < Cap; ++I) {
    if (I)
      OS << ",";
    OS << "{\"metric\":\"" << Out[I].Name << "\",\"value\":";
    std::snprintf(Buf, sizeof(Buf), "%.6g", Out[I].Value);
    OS << Buf << ",\"percentile\":";
    std::snprintf(Buf, sizeof(Buf), "%.4g", Out[I].Percentile);
    OS << Buf << ",\"x_median\":";
    if (Out[I].XMedian < 0)
      OS << "null"; // Peer median is zero: a multiple is meaningless.
    else {
      std::snprintf(Buf, sizeof(Buf), "%.4g", Out[I].XMedian);
      OS << Buf;
    }
    OS << "}";
  }
  OS << "]}";
  return OS.str();
}

/// The bounded label vocabulary of dggt_http_requests_total: known
/// routes keep their path, everything else collapses to "other" so a
/// URL-scanning client cannot mint unbounded label values.
std::string_view routeLabel(std::string_view Path) {
  if (Path == "/metrics" || Path == "/debug/traces" || Path == "/healthz" ||
      Path == "/readyz" || Path == "/statusz" || Path == "/v1/synthesize" ||
      Path == "/debug/querylog" || Path == "/debug/profile" ||
      Path == "/debug/profile/start" || Path == "/debug/profile/stop")
    return Path;
  // Trace-id lookups collapse to one label: ids are client-chosen.
  if (Path.rfind("/debug/query/", 0) == 0)
    return "/debug/query";
  return "other";
}

void countRequest(std::string_view Path, int Code) {
  if (!metricsEnabled())
    return;
  char CodeBuf[8];
  std::snprintf(CodeBuf, sizeof(CodeBuf), "%d", Code);
  registry()
      .counter("dggt_http_requests_total", {{"path", std::string(routeLabel(Path))},
                                            {"code", CodeBuf}})
      .inc();
}

obs::Histogram &scrapeLatencyMs() {
  static obs::Histogram &H =
      registry().histogram("dggt_http_scrape_latency_ms");
  return H;
}

//===--------------------------------------------------------------------===//
// Minimal flat-JSON body parser
//===--------------------------------------------------------------------===//

/// Cursor over the /v1/synthesize request body. The accepted grammar is
/// deliberately small — one flat object of string and non-negative
/// integer members — because that is the entire request schema; a
/// nested value or trailing garbage is a 400, not something to recover.
struct JsonCursor {
  std::string_view S;
  size_t I = 0;

  void skipWs() {
    while (I < S.size() && (S[I] == ' ' || S[I] == '\t' || S[I] == '\r' ||
                            S[I] == '\n'))
      ++I;
  }
  bool eat(char C) {
    skipWs();
    if (I >= S.size() || S[I] != C)
      return false;
    ++I;
    return true;
  }
  bool atEnd() {
    skipWs();
    return I >= S.size();
  }

  /// Parses a JSON string literal (standard escapes, \uXXXX for code
  /// points below U+0800; surrogates are rejected — NL queries are
  /// plain text, not astral-plane payloads).
  bool parseString(std::string &Out) {
    skipWs();
    if (I >= S.size() || S[I] != '"')
      return false;
    ++I;
    Out.clear();
    while (I < S.size()) {
      char C = S[I++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return false; // Raw control characters are invalid JSON.
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (I >= S.size())
        return false;
      char E = S[I++];
      switch (E) {
      case '"': Out += '"'; break;
      case '\\': Out += '\\'; break;
      case '/': Out += '/'; break;
      case 'b': Out += '\b'; break;
      case 'f': Out += '\f'; break;
      case 'n': Out += '\n'; break;
      case 'r': Out += '\r'; break;
      case 't': Out += '\t'; break;
      case 'u': {
        if (I + 4 > S.size())
          return false;
        unsigned V = 0;
        for (int K = 0; K < 4; ++K) {
          char H = S[I++];
          V <<= 4;
          if (H >= '0' && H <= '9')
            V |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            V |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            V |= static_cast<unsigned>(H - 'A' + 10);
          else
            return false;
        }
        if (V >= 0xD800 && V <= 0xDFFF)
          return false;
        if (V < 0x80) {
          Out += static_cast<char>(V);
        } else if (V < 0x800) {
          Out += static_cast<char>(0xC0 | (V >> 6));
          Out += static_cast<char>(0x80 | (V & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (V >> 12));
          Out += static_cast<char>(0x80 | ((V >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (V & 0x3F));
        }
        break;
      }
      default:
        return false;
      }
    }
    return false; // Unterminated.
  }

  bool parseNumber(uint64_t &Out) {
    skipWs();
    size_t Start = I;
    while (I < S.size() && S[I] >= '0' && S[I] <= '9')
      ++I;
    if (I == Start)
      return false;
    std::optional<uint64_t> N = parseUnsigned(S.substr(Start, I - Start));
    if (!N)
      return false;
    Out = *N;
    return true;
  }
};

/// Parses the request body into \p Req. Unknown string/number keys are
/// ignored (forward compatibility); anything structurally outside "one
/// flat object" fails.
bool parseSynthesizeBody(std::string_view Body, SynthesizeRequest &Req,
                         std::string &Error) {
  JsonCursor C{Body};
  if (!C.eat('{')) {
    Error = "body is not a JSON object";
    return false;
  }
  bool First = true;
  while (true) {
    C.skipWs();
    if (C.eat('}'))
      break;
    if (!First && !C.eat(',')) {
      Error = "expected ',' between members";
      return false;
    }
    First = false;
    std::string Key;
    if (!C.parseString(Key)) {
      Error = "expected string key";
      return false;
    }
    if (!C.eat(':')) {
      Error = "expected ':' after key";
      return false;
    }
    C.skipWs();
    if (C.I < C.S.size() && C.S[C.I] == '"') {
      std::string Val;
      if (!C.parseString(Val)) {
        Error = "malformed string value";
        return false;
      }
      if (Key == "query")
        Req.Query = std::move(Val);
      else if (Key == "domain")
        Req.Domain = std::move(Val);
    } else {
      uint64_t Val = 0;
      if (!C.parseNumber(Val)) {
        Error = "malformed value for key '" + Key + "'";
        return false;
      }
      if (Key == "budget_ms")
        Req.BudgetMs = Val;
    }
  }
  if (!C.atEnd()) {
    Error = "trailing bytes after the JSON object";
    return false;
  }
  if (Req.Domain.empty() || Req.Query.empty()) {
    Error = "missing required members 'domain' and/or 'query'";
    return false;
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

/// One in-flight connection of the poll loop.
struct HttpEndpoint::Conn {
  int Fd = -1;
  std::string Buf; ///< Request bytes read so far.
  std::chrono::steady_clock::time_point Deadline;
  bool HeadDone = false; ///< Head parsed; now reading the body.
  size_t HeadEnd = 0;    ///< Offset of the "\r\n\r\n" terminator.
  size_t BodyLen = 0;    ///< Declared Content-Length.
  std::string Path;      ///< Request path (for the route counter).
  std::string Traceparent;    ///< Inbound `traceparent` header, if any.
  std::string TraceparentOut; ///< Echoed on the deferred reply / 504.
  /// Non-null while parked on the synthesize provider's answer.
  std::shared_ptr<DeferredState> Deferred;
};

/// The parking slot of one deferred request: the provider's reply
/// callback fills it from an arbitrary thread, the poll loop drains it.
/// Shared ownership (callback + connection) means whichever side is
/// late — a reply after the client hung up, a close after the reply —
/// touches valid memory and simply loses the race.
struct HttpEndpoint::DeferredState {
  std::atomic<bool> Ready{false};
  std::mutex M; ///< Guards Resp against the Ready publish.
  SynthesizeResponse Resp;
};

/// Shared handle to the poll loop's wake pipe. Reply callbacks hold a
/// weak_ptr: stop() invalidates the fd under the mutex before closing
/// the pipe, so a reply landing mid-shutdown wakes nobody instead of
/// writing to a recycled descriptor.
struct HttpEndpoint::Waker {
  std::mutex M;
  int Fd = -1;

  void wake() {
    std::lock_guard<std::mutex> L(M);
    if (Fd < 0)
      return;
    char B = 'x';
    [[maybe_unused]] ssize_t W = write(Fd, &B, 1);
  }
};

HttpEndpoint::HttpEndpoint() : HttpEndpoint(Options()) {}

HttpEndpoint::HttpEndpoint(Options O) : Opts(std::move(O)) {}

HttpEndpoint::~HttpEndpoint() { stop(); }

bool HttpEndpoint::start(std::string &Error) {
  if (Running.load(std::memory_order_acquire))
    return true;

  int Fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int One = 1;
  setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Opts.Port);
  if (inet_pton(AF_INET, Opts.BindAddress.c_str(), &Addr.sin_addr) != 1) {
    Error = "bad bind address '" + Opts.BindAddress + "'";
    close(Fd);
    return false;
  }
  // The endpoint serves unauthenticated read-only introspection; leaving
  // loopback (anything outside 127.0.0.0/8, including 0.0.0.0) must be
  // the operator's written decision, not a config typo.
  if ((ntohl(Addr.sin_addr.s_addr) >> 24) != 127 && !insecureBindAllowed()) {
    Error = "refusing non-loopback bind address '" + Opts.BindAddress +
            "' (unauthenticated endpoint); add 'insecure-bind' to "
            "DGGT_METRICS to expose it beyond loopback";
    close(Fd);
    return false;
  }
  if (bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Error = "bind " + Opts.BindAddress + ":" + std::to_string(Opts.Port) +
            ": " + std::strerror(errno);
    close(Fd);
    return false;
  }
  if (listen(Fd, 16) != 0) {
    Error = std::string("listen: ") + std::strerror(errno);
    close(Fd);
    return false;
  }
  socklen_t Len = sizeof(Addr);
  if (getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0) {
    Error = std::string("getsockname: ") + std::strerror(errno);
    close(Fd);
    return false;
  }
  if (!setNonBlocking(Fd)) {
    Error = std::string("fcntl: ") + std::strerror(errno);
    close(Fd);
    return false;
  }
  if (pipe(WakeFds) != 0) {
    Error = std::string("pipe: ") + std::strerror(errno);
    close(Fd);
    WakeFds[0] = WakeFds[1] = -1;
    return false;
  }
  setNonBlocking(WakeFds[0]);
  WakeHandle = std::make_shared<Waker>();
  WakeHandle->Fd = WakeFds[1];

  ListenFd = Fd;
  BoundPort.store(ntohs(Addr.sin_port), std::memory_order_release);
  StopFlag.store(false, std::memory_order_release);
  Running.store(true, std::memory_order_release);
  Server = std::thread([this] { serverLoop(); });

  if (Opts.Announce) {
    // Exact prefix parsed by cmake/CheckEndpointOutput.cmake; flushed so
    // a supervisor reading a pipe sees the port before the first scrape.
    std::printf("dggt-http-endpoint: listening on %s:%u\n",
                Opts.BindAddress.c_str(), static_cast<unsigned>(port()));
    std::fflush(stdout);
  }
  return true;
}

void HttpEndpoint::stop() {
  if (!Running.exchange(false, std::memory_order_acq_rel))
    return;
  StopFlag.store(true, std::memory_order_release);
  if (WakeFds[1] >= 0) {
    char B = 'x';
    [[maybe_unused]] ssize_t W = write(WakeFds[1], &B, 1);
  }
  if (Server.joinable())
    Server.join();
  // Invalidate the waker before the pipe closes: a late deferred reply
  // then no-ops instead of writing a dead (possibly recycled) fd.
  if (WakeHandle) {
    std::lock_guard<std::mutex> L(WakeHandle->M);
    WakeHandle->Fd = -1;
  }
  WakeHandle.reset();
  if (ListenFd >= 0)
    close(ListenFd);
  for (int &Fd : WakeFds)
    if (Fd >= 0)
      close(Fd);
  ListenFd = -1;
  WakeFds[0] = WakeFds[1] = -1;
  BoundPort.store(0, std::memory_order_release);
}

uint64_t HttpEndpoint::setHealthProvider(HealthProvider P) {
  std::lock_guard<std::mutex> L(ProvidersM);
  Health = std::move(P);
  HealthToken = Health ? NextProviderToken++ : 0;
  return HealthToken;
}

uint64_t HttpEndpoint::setStatusProvider(StatusProvider P) {
  std::lock_guard<std::mutex> L(ProvidersM);
  Status = std::move(P);
  StatusToken = Status ? NextProviderToken++ : 0;
  return StatusToken;
}

uint64_t HttpEndpoint::setSynthesizeProvider(SynthesizeProvider P) {
  std::lock_guard<std::mutex> L(ProvidersM);
  Synthesize = std::move(P);
  SynthesizeToken = Synthesize ? NextProviderToken++ : 0;
  return SynthesizeToken;
}

void HttpEndpoint::clearHealthProvider(uint64_t Token) {
  if (!Token)
    return;
  std::lock_guard<std::mutex> L(ProvidersM);
  if (HealthToken == Token) {
    Health = nullptr;
    HealthToken = 0;
  }
}

void HttpEndpoint::clearStatusProvider(uint64_t Token) {
  if (!Token)
    return;
  std::lock_guard<std::mutex> L(ProvidersM);
  if (StatusToken == Token) {
    Status = nullptr;
    StatusToken = 0;
  }
}

void HttpEndpoint::clearSynthesizeProvider(uint64_t Token) {
  if (!Token)
    return;
  std::lock_guard<std::mutex> L(ProvidersM);
  if (SynthesizeToken == Token) {
    Synthesize = nullptr;
    SynthesizeToken = 0;
  }
}

//===----------------------------------------------------------------------===//
// Server loop
//===----------------------------------------------------------------------===//

void HttpEndpoint::serverLoop() {
  std::vector<Conn> Conns;
  std::vector<pollfd> Pfds;

  auto CloseConn = [&](size_t I) {
    close(Conns[I].Fd);
    Conns.erase(Conns.begin() + static_cast<ptrdiff_t>(I));
  };

  /// Writes the whole response; the bodies are small and the peer is a
  /// scraper on loopback, so a short blocking write loop is fine.
  auto WriteAll = [&](int Fd, std::string_view Data) {
    size_t Off = 0;
    while (Off < Data.size()) {
      ssize_t N = send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
      if (N > 0) {
        Off += static_cast<size_t>(N);
        continue;
      }
      if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd P{Fd, POLLOUT, 0};
        if (poll(&P, 1, static_cast<int>(Opts.RequestTimeoutMs)) <= 0)
          return; // Peer stalled; drop the rest.
        continue;
      }
      return; // Peer went away.
    }
  };

  while (!StopFlag.load(std::memory_order_acquire)) {
    Pfds.clear();
    Pfds.push_back({ListenFd, POLLIN, 0});
    Pfds.push_back({WakeFds[0], POLLIN, 0});
    for (const Conn &C : Conns)
      Pfds.push_back({C.Fd, POLLIN, 0});

    // 250 ms cap so idle-connection sweeping and shutdown stay prompt
    // even if the wake pipe write were ever lost.
    int N = poll(Pfds.data(), Pfds.size(), 250);
    if (StopFlag.load(std::memory_order_acquire))
      break;
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }

    // Only connections that existed when Pfds was built have a pollfd
    // (Pfds[I + 2] mirrors Conns[I] for I < Old); those accepted below
    // are first polled on the next iteration.
    size_t Old = Conns.size();

    // Accept new connections (bounded; beyond the cap: accept + close so
    // the backlog cannot fill with sockets we will never read).
    // SOCK_CLOEXEC so in-flight connection fds don't leak into children
    // across fork/exec, matching the listener.
    if (Pfds[0].revents & POLLIN) {
      while (true) {
        int Fd = accept4(ListenFd, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (Fd < 0)
          break;
        if (Conns.size() >= Opts.MaxConnections) {
          close(Fd);
          continue;
        }
        Conn C;
        C.Fd = Fd;
        C.Deadline = clockNow(Opts.Clock) +
                     std::chrono::milliseconds(Opts.RequestTimeoutMs);
        Conns.push_back(std::move(C));
      }
    }
    if (Pfds[1].revents & POLLIN) {
      char Buf[16];
      while (read(WakeFds[0], Buf, sizeof(Buf)) > 0) {
      }
    }

    // Service readable connections. Iterate backwards so CloseConn's
    // erase cannot skip an entry or shift a lower index out from under
    // its pollfd.
    for (size_t I = Old; I-- > 0;) {
      short Re = Pfds[I + 2].revents;
      Conn &C = Conns[I];
      if (Re & (POLLERR | POLLHUP | POLLNVAL)) {
        CloseConn(I);
        continue;
      }

      // A parked (deferred) connection is serviced on every wake: the
      // provider's answer is written when ready, the extended deadline
      // turns a never-answering provider into a 504, and bytes/EOF from
      // the client are drained so a vanished peer frees its slot.
      if (C.Deferred) {
        if (C.Deferred->Ready.load(std::memory_order_acquire)) {
          SynthesizeResponse R;
          {
            std::lock_guard<std::mutex> L(C.Deferred->M);
            R = C.Deferred->Resp;
          }
          // dataplane.reply: the response is computed but never makes it
          // back — the client sees a dropped connection (tests drive the
          // "who retries" half of the failure matrix with this).
          if (!faultFires(faults::DataplaneReply))
            WriteAll(C.Fd,
                     respond(C.Path, R.Code, "application/json", R.Body,
                             R.RetryAfterSeconds, {}, C.TraceparentOut));
          CloseConn(I);
          continue;
        }
        if (clockNow(Opts.Clock) >= C.Deadline) {
          WriteAll(C.Fd,
                   respond(C.Path, 504, "application/json",
                           "{\"error\":\"synthesis did not complete before "
                           "the deadline\"}",
                           0, {}, C.TraceparentOut));
          CloseConn(I);
          continue;
        }
        if (Re & POLLIN) {
          char Buf[256];
          ssize_t R = recv(C.Fd, Buf, sizeof(Buf), 0);
          if (R == 0 || (R < 0 && errno != EAGAIN && errno != EWOULDBLOCK))
            CloseConn(I); // Client gone; the late answer is dropped.
        }
        continue;
      }

      // Deadline applies whether or not bytes arrived: a client
      // trickling one byte per poll round must not outlive the timeout,
      // and the same clock covers head and body reads.
      if (clockNow(Opts.Clock) >= C.Deadline) {
        CloseConn(I);
        continue;
      }
      if (!(Re & POLLIN))
        continue;
      char Buf[4096];
      ssize_t R = recv(C.Fd, Buf, sizeof(Buf), 0);
      if (R == 0 || (R < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
        CloseConn(I);
        continue;
      }
      if (R > 0)
        C.Buf.append(Buf, static_cast<size_t>(R));

      if (!C.HeadDone) {
        size_t HeadEnd = C.Buf.find("\r\n\r\n");
        if (HeadEnd == std::string::npos) {
          if (C.Buf.size() > Opts.MaxRequestBytes) {
            // Oversized or never-terminating head: strict 400, close.
            WriteAll(C.Fd,
                     respond("", 400, "application/json",
                             "{\"error\":\"request head too large\"}"));
            CloseConn(I);
          }
          continue;
        }
        C.HeadEnd = HeadEnd;
        std::string Resp;
        ReqAction Act = processHead(C, Resp);
        if (Act == ReqAction::Respond) {
          WriteAll(C.Fd, Resp);
          CloseConn(I);
          continue;
        }
        // NeedBody: fall through — the bytes read alongside the head may
        // already complete the body.
      }

      if (C.Buf.size() >= C.HeadEnd + 4 + C.BodyLen) {
        std::string Resp;
        ReqAction Act = processBody(C, Resp);
        if (Act == ReqAction::Respond) {
          WriteAll(C.Fd, Resp);
          CloseConn(I);
        }
        // Deferred: the connection parks; serviced above on later wakes.
      }
    }
  }

  for (const Conn &C : Conns)
    close(C.Fd);
}

//===----------------------------------------------------------------------===//
// Request handling
//===----------------------------------------------------------------------===//

std::string HttpEndpoint::respond(std::string_view Path, int Code,
                                  std::string_view ContentType,
                                  std::string_view Body,
                                  unsigned RetryAfterSeconds,
                                  std::string_view Allow,
                                  std::string_view Traceparent) {
  Served.fetch_add(1, std::memory_order_relaxed);
  countRequest(Path, Code);

  std::string Resp;
  Resp.reserve(Body.size() + 200);
  Resp += "HTTP/1.1 ";
  Resp += std::to_string(Code);
  Resp += " ";
  Resp += statusText(Code);
  Resp += "\r\nContent-Type: ";
  Resp += ContentType;
  if (!Allow.empty()) {
    Resp += "\r\nAllow: ";
    Resp += Allow;
  }
  if (!Traceparent.empty()) {
    Resp += "\r\ntraceparent: ";
    Resp += Traceparent;
  }
  if (RetryAfterSeconds > 0) {
    Resp += "\r\nRetry-After: ";
    Resp += std::to_string(RetryAfterSeconds);
  }
  Resp += "\r\nContent-Length: ";
  Resp += std::to_string(Body.size());
  Resp += "\r\nConnection: close\r\n\r\n";
  Resp += Body;
  return Resp;
}

HttpEndpoint::ReqAction HttpEndpoint::processHead(Conn &C, std::string &Resp) {
  ScopedLatencyMs Latency(scrapeLatencyMs());

  // Strict request line: exactly "METHOD SP TARGET SP HTTP/1.x", single
  // spaces, target starting with '/'.
  std::string_view Head(C.Buf.data(), C.HeadEnd);
  std::string_view Line = Head.substr(0, Head.find("\r\n"));

  size_t Sp1 = Line.find(' ');
  size_t Sp2 = Sp1 == std::string_view::npos ? std::string_view::npos
                                             : Line.find(' ', Sp1 + 1);
  if (!(Sp1 != std::string_view::npos && Sp2 != std::string_view::npos &&
        Line.find(' ', Sp2 + 1) == std::string_view::npos && Sp1 > 0 &&
        Sp2 > Sp1 + 1 && Sp2 + 1 < Line.size())) {
    Resp = respond("", 400, "application/json",
                   "{\"error\":\"malformed request line\"}");
    return ReqAction::Respond;
  }
  std::string_view Method = Line.substr(0, Sp1);
  std::string_view Target = Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);
  std::string_view Version = Line.substr(Sp2 + 1);
  if (!((Version == "HTTP/1.1" || Version == "HTTP/1.0") &&
        Target.front() == '/')) {
    Resp = respond("", 400, "application/json",
                   "{\"error\":\"malformed request line\"}");
    return ReqAction::Respond;
  }
  std::string_view Path = Target.substr(0, Target.find('?'));
  C.Path = std::string(Path);

  if (Path == "/v1/synthesize") {
    if (Method != "POST") {
      Resp = respond(Path, 405, "application/json",
                     "{\"error\":\"/v1/synthesize is POST-only\"}", 0, "POST");
      return ReqAction::Respond;
    }
    // Exactly one well-formed Content-Length header frames the body.
    // Duplicates (even agreeing ones) and anything the strict unsigned
    // parser rejects are a 400: request smuggling primitives, not
    // tolerable sloppiness.
    size_t Found = 0;
    uint64_t Length = 0;
    bool Malformed = false;
    std::vector<std::string> Lines = split(Head, "\r\n");
    for (size_t LI = 1; LI < Lines.size(); ++LI) {
      std::string_view HeaderLine = Lines[LI];
      size_t Colon = HeaderLine.find(':');
      if (Colon == std::string_view::npos)
        continue;
      std::string HeaderName = toLower(trim(HeaderLine.substr(0, Colon)));
      if (HeaderName == "traceparent") {
        C.Traceparent = std::string(trim(HeaderLine.substr(Colon + 1)));
        continue;
      }
      if (HeaderName != "content-length")
        continue;
      ++Found;
      std::optional<uint64_t> N =
          parseUnsigned(trim(HeaderLine.substr(Colon + 1)));
      if (!N)
        Malformed = true;
      else
        Length = *N;
    }
    if (Found == 0) {
      Resp = respond(Path, 411, "application/json",
                     "{\"error\":\"Content-Length required\"}");
      return ReqAction::Respond;
    }
    if (Found > 1 || Malformed) {
      Resp = respond(Path, 400, "application/json",
                     "{\"error\":\"malformed or duplicate Content-Length\"}");
      return ReqAction::Respond;
    }
    if (Length > Opts.MaxBodyBytes) {
      Resp = respond(Path, 413, "application/json",
                     "{\"error\":\"request body exceeds the limit\"}");
      return ReqAction::Respond;
    }
    C.BodyLen = static_cast<size_t>(Length);
    C.HeadDone = true;
    return ReqAction::NeedBody;
  }

  // On-demand profiler control: POST-only, no body (state changes must
  // not ride on a cacheable GET).
  if (Path == "/debug/profile/start" || Path == "/debug/profile/stop") {
    if (Method != "POST") {
      Resp = respond(Path, 405, "application/json",
                     "{\"error\":\"profiler control is POST-only\"}", 0,
                     "POST");
      return ReqAction::Respond;
    }
    std::string_view Query = Target.size() > Path.size() + 1
                                 ? Target.substr(Path.size() + 1)
                                 : std::string_view();
    int Code = 200;
    std::string Body = profilerControl(Path, Query, Code);
    Resp = respond(Path, Code, "application/json", Body);
    return ReqAction::Respond;
  }

  if (Method != "GET") {
    Resp = respond(Path, 405, "application/json",
                   "{\"error\":\"method not allowed; only /v1/synthesize "
                   "accepts POST\"}",
                   0, "GET");
    return ReqAction::Respond;
  }
  int Code = 200;
  std::string ContentType = "application/json";
  std::string Body = dispatch(Target, Code, ContentType);
  Resp = respond(Path, Code, ContentType, Body);
  return ReqAction::Respond;
}

HttpEndpoint::ReqAction HttpEndpoint::processBody(Conn &C, std::string &Resp) {
  std::string_view Body(C.Buf.data() + C.HeadEnd + 4, C.BodyLen);

  SynthesizeRequest Req;
  std::string Error;
  if (!parseSynthesizeBody(Body, Req, Error)) {
    Resp = respond(C.Path, 400, "application/json",
                   "{\"error\":\"" + escapeJson(Error) + "\"}");
    return ReqAction::Respond;
  }

  std::lock_guard<std::mutex> L(ProvidersM);
  if (!Synthesize) {
    Resp = respond(C.Path, 503, "application/json",
                   "{\"error\":\"no synthesis service registered\"}", 1);
    return ReqAction::Respond;
  }

  // Mint the query's trace context — adopting an inbound W3C
  // traceparent when the client sent one — and pre-allocate the
  // request's root span. Everything downstream (router attempt, queue
  // task, pipeline stages) parents under that root; the span itself is
  // emitted by the reply callback once the outcome is known, before the
  // owning tier settles the trace's keep/drop decision.
  QueryContext Ctx;
  if (C.Traceparent.empty() || !parseTraceparent(C.Traceparent, Ctx))
    Ctx = startQueryContext();
  attachTraceBuffer(Ctx);
  uint64_t RootSpan = newSpanId();
  uint64_t InboundParent = Ctx.ParentSpan;
  Ctx.ParentSpan = RootSpan;
  Req.Ctx = Ctx;
  C.TraceparentOut = traceparentHeader(Ctx);

  // Park the connection: the provider answers through the callback from
  // whatever thread completes the query, and the wake pipe nudges the
  // poll loop to write it out. The parked deadline covers the declared
  // budget plus the normal request timeout (or the synthesize ceiling
  // when the request left the budget to the domain default), so a
  // provider that never answers becomes a 504.
  auto D = std::make_shared<DeferredState>();
  C.Deferred = D;
  uint64_t ParkMs = Req.BudgetMs > 0 ? Req.BudgetMs + Opts.RequestTimeoutMs
                                     : Opts.SynthesizeTimeoutMs;
  C.Deadline = clockNow(Opts.Clock) + std::chrono::milliseconds(ParkMs);
  std::weak_ptr<Waker> W = WakeHandle;
  double StartSec = nowSecondsSinceEpoch();
  Synthesize(Req, [D, W, Ctx, RootSpan, InboundParent, StartSec,
                   Domain = Req.Domain](SynthesizeResponse R) {
    // The request's root span, emitted before Ready publishes: the
    // tier that owns the query's record settles the trace only after
    // this callback returns, so the root is always in the buffer by
    // the time the keep/drop decision flushes it.
    SpanRecord S;
    S.SpanId = RootSpan;
    S.ParentId = InboundParent;
    S.Name = "http.synthesize";
    S.StartSeconds = StartSec;
    S.DurationSeconds = nowSecondsSinceEpoch() - StartSec;
    S.Attrs.emplace_back("domain", Domain);
    S.Attrs.emplace_back("code", std::to_string(R.Code));
    emitSpan(Ctx, std::move(S));
    {
      std::lock_guard<std::mutex> L(D->M);
      D->Resp = std::move(R);
    }
    D->Ready.store(true, std::memory_order_release);
    if (std::shared_ptr<Waker> Wk = W.lock())
      Wk->wake();
  });
  return ReqAction::Deferred;
}

std::string HttpEndpoint::dispatch(std::string_view Target, int &Code,
                                   std::string &ContentType) {
  std::string_view Path = Target.substr(0, Target.find('?'));
  std::string_view Query = Target.size() > Path.size()
                               ? Target.substr(Path.size() + 1)
                               : std::string_view();
  Code = 200;
  ContentType = "application/json";

  if (Path == "/metrics") {
    ContentType = "text/plain; version=0.0.4; charset=utf-8";
    std::ostringstream OS;
    writePrometheusText(collectMetrics(), OS);
    return OS.str();
  }

  if (Path == "/debug/traces") {
    size_t Limit = SIZE_MAX;
    std::string NameFilter;
    for (const auto &[K, V] : parseQuery(Query)) {
      if (K == "limit") {
        if (std::optional<uint64_t> N = parseUnsigned(V))
          Limit = static_cast<size_t>(*N);
      } else if (K == "span") {
        NameFilter = V;
      }
    }
    std::ostringstream OS;
    std::shared_ptr<SpanRingSink> Ring = spanRing();
    OS << "{\"spans\":[";
    size_t Count = 0;
    if (Ring) {
      std::vector<SpanRecord> Spans = Ring->snapshot();
      if (!NameFilter.empty()) {
        std::erase_if(Spans, [&](const SpanRecord &S) {
          return S.Name.find(NameFilter) == std::string::npos;
        });
      }
      // ?limit keeps the *newest* N (the snapshot is oldest-first).
      size_t Begin = Spans.size() > Limit ? Spans.size() - Limit : 0;
      for (size_t I = Begin; I < Spans.size(); ++I) {
        if (Count++)
          OS << ",";
        writeSpanJson(Spans[I], OS);
      }
    }
    OS << "],\"count\":" << Count
       << ",\"ring_configured\":" << (Ring ? "true" : "false")
       << ",\"ring_capacity\":" << (Ring ? Ring->capacity() : 0)
       << ",\"overwritten\":" << (Ring ? Ring->overwritten() : 0)
       << ",\"dropped_by_sampling\":" << Tracer::droppedSpans() << "}";
    return OS.str();
  }

  if (Path == "/debug/profile") {
    // Collapsed/folded stacks ("a;b;c 42" lines), the flamegraph input
    // format. 404 until the profiler has captured anything: an empty
    // profile is indistinguishable from a misconfigured one, so say so.
    std::string Folded = profiler().foldedStacks();
    if (Folded.empty()) {
      Code = 404;
      return "{\"error\":\"no profile samples; start with the prof:HZ "
             "entry of DGGT_METRICS or POST /debug/profile/start\"}";
    }
    ContentType = "text/plain; charset=utf-8";
    return Folded;
  }

  if (Path == "/debug/querylog") {
    size_t Limit = SIZE_MAX;
    size_t Slowest = 0;
    std::string DomainF, OutcomeF;
    double MinMs = -1;
    for (const auto &[K, V] : parseQuery(Query)) {
      if (K == "limit") {
        if (std::optional<uint64_t> N = parseUnsigned(V))
          Limit = static_cast<size_t>(*N);
      } else if (K == "domain") {
        DomainF = V;
      } else if (K == "outcome") {
        OutcomeF = V;
      } else if (K == "min_ms") {
        if (std::optional<uint64_t> N = parseUnsigned(V))
          MinMs = static_cast<double>(*N);
      } else if (K == "slowest") {
        if (std::optional<uint64_t> N = parseUnsigned(V))
          Slowest = static_cast<size_t>(*N);
      }
    }
    std::vector<QueryLogRecord> Recs = queryLog().snapshot();
    std::erase_if(Recs, [&](const QueryLogRecord &R) {
      return (!DomainF.empty() && R.Domain != DomainF) ||
             (!OutcomeF.empty() && R.Outcome != OutcomeF) ||
             (MinMs >= 0 && R.TotalMs < MinMs);
    });
    if (Slowest > 0) {
      // Top-N by total latency, slowest first — the "what hurt today"
      // view. Stable so equal-latency records keep ring (time) order.
      std::stable_sort(Recs.begin(), Recs.end(),
                       [](const QueryLogRecord &A, const QueryLogRecord &B) {
                         return A.TotalMs > B.TotalMs;
                       });
      if (Recs.size() > Slowest)
        Recs.resize(Slowest);
    }
    std::ostringstream OS;
    OS << "{\"records\":[";
    // ?limit keeps the *newest* N (the snapshot is oldest-first).
    size_t Begin = Recs.size() > Limit ? Recs.size() - Limit : 0;
    size_t Count = 0;
    for (size_t I = Begin; I < Recs.size(); ++I)
      OS << (Count++ ? "," : "") << queryLogRecordJson(Recs[I]);
    OS << "],\"count\":" << Count << ",\"total\":" << queryLog().total()
       << ",\"overwritten\":" << queryLog().overwritten() << "}";
    return OS.str();
  }

  if (Path.rfind("/debug/query/", 0) == 0) {
    std::string_view Id = Path.substr(sizeof("/debug/query/") - 1);
    // Parse the 32-hex id into the (hi, lo) pair the span ring stamps.
    auto HexVal = [](char Ch) -> int {
      if (Ch >= '0' && Ch <= '9')
        return Ch - '0';
      if (Ch >= 'a' && Ch <= 'f')
        return Ch - 'a' + 10;
      return -1;
    };
    uint64_t Hi = 0, Lo = 0;
    bool IdOk = Id.size() == 32;
    for (size_t I = 0; IdOk && I < Id.size(); ++I) {
      int V = HexVal(Id[I]);
      if (V < 0) {
        IdOk = false;
        break;
      }
      uint64_t &Half = I < 16 ? Hi : Lo;
      Half = (Half << 4) | static_cast<uint64_t>(V);
    }
    std::shared_ptr<const QueryLogRecord> Rec = queryLog().findByTraceId(Id);
    std::ostringstream SpansOS;
    size_t SpanCount = 0;
    if (IdOk) {
      if (std::shared_ptr<SpanRingSink> Ring = spanRing()) {
        for (const SpanRecord &S : Ring->snapshot()) {
          if (S.TraceHi != Hi || S.TraceId != Lo)
            continue;
          if (SpanCount++)
            SpansOS << ",";
          writeSpanJson(S, SpansOS);
        }
      }
    }
    if (!Rec && SpanCount == 0) {
      Code = 404;
      return "{\"error\":\"unknown trace id\"}";
    }
    std::ostringstream OS;
    OS << "{\"trace_id\":\"" << escapeJson(Id) << "\",\"record\":";
    if (Rec)
      OS << queryLogRecordJson(*Rec) << ",\"explain\":" << explainJson(*Rec);
    else
      OS << "null,\"explain\":null";
    OS << ",\"spans\":[" << SpansOS.str() << "],\"span_count\":" << SpanCount
       << "}";
    return OS.str();
  }

  if (Path == "/healthz" || Path == "/readyz") {
    HealthStatus St;
    std::string Detail = "no service registered";
    {
      std::lock_guard<std::mutex> L(ProvidersM);
      if (Health) {
        St = Health();
        Detail = St.Detail;
      }
    }
    bool Pass = Path == "/healthz" ? St.Healthy : St.Ready;
    Code = Pass ? 200 : 503;
    std::ostringstream OS;
    OS << "{\"status\":\"" << (Pass ? "ok" : "unavailable")
       << "\",\"ready\":" << (St.Ready ? "true" : "false")
       << ",\"healthy\":" << (St.Healthy ? "true" : "false")
       << ",\"detail\":\"" << escapeJson(Detail) << "\"}";
    return OS.str();
  }

  if (Path == "/statusz") {
    std::ostringstream OS;
    OS << "{\"build\":{\"version\":\"" << escapeJson(buildVersion())
       << "\",\"git_sha\":\"" << escapeJson(buildGitSha())
       << "\",\"sanitizers\":\"" << escapeJson(buildSanitizers())
       << "\"},\"uptime_seconds\":" << uptimeSeconds()
       << ",\"endpoint\":{\"port\":" << port()
       << ",\"requests_served\":" << requestsServed() << "}";
    // Per-query scratch footprint: the process-wide arena peak plus the
    // p50/p99 of the dggt_arena_high_water_bytes histogram (when any
    // query observed into it yet).
    OS << ",\"arena\":{\"process_high_water_bytes\":"
       << Arena::processHighWater();
    for (const MetricSnapshot &M : registry().snapshot()) {
      if (M.Name != "dggt_arena_high_water_bytes" ||
          M.K != MetricSnapshot::Kind::Histogram || M.Count == 0)
        continue;
      OS << ",\"query_count\":" << M.Count << ",\"p50_bytes\":"
         << static_cast<uint64_t>(
                percentileFromCounts(M.Bounds, M.BucketCounts, 50))
         << ",\"p99_bytes\":"
         << static_cast<uint64_t>(
                percentileFromCounts(M.Bounds, M.BucketCounts, 99));
      break;
    }
    OS << "}";
    OS << ",\"profiler\":{\"running\":"
       << (profiler().running() ? "true" : "false")
       << ",\"hz\":" << profiler().hz()
       << ",\"samples_total\":" << profiler().samplesTotal()
       << ",\"dropped_total\":" << profiler().droppedTotal()
       << ",\"handler_nanos_total\":" << profiler().handlerNanosTotal()
       << ",\"wall_nanos_total\":" << profiler().wallNanosTotal() << "}";
    {
      std::lock_guard<std::mutex> L(ProvidersM);
      if (Status)
        OS << ",\"service\":" << Status();
      else
        OS << ",\"service\":null";
    }
    OS << "}";
    return OS.str();
  }

  Code = 404;
  return "{\"error\":\"not found\",\"routes\":[\"/metrics\",\"/debug/traces\","
         "\"/debug/querylog\",\"/debug/query/<trace-id>\","
         "\"/debug/profile\",\"/debug/profile/start\","
         "\"/debug/profile/stop\",\"/healthz\",\"/readyz\",\"/statusz\"]}";
}

//===----------------------------------------------------------------------===//
// Global endpoint (http:PORT spec wiring)
//===----------------------------------------------------------------------===//

namespace {

struct GlobalEndpoint {
  std::mutex M;
  std::shared_ptr<HttpEndpoint> Ep;
};

GlobalEndpoint &globalEndpoint() {
  // Intentionally leaked, like the registry: service layers may look the
  // endpoint up during static teardown of their owners.
  static GlobalEndpoint *G = new GlobalEndpoint();
  return *G;
}

} // namespace

std::shared_ptr<HttpEndpoint> obs::httpEndpoint() {
  GlobalEndpoint &G = globalEndpoint();
  std::lock_guard<std::mutex> L(G.M);
  return G.Ep;
}

void obs::setHttpEndpoint(std::shared_ptr<HttpEndpoint> Ep) {
  GlobalEndpoint &G = globalEndpoint();
  std::lock_guard<std::mutex> L(G.M);
  G.Ep = std::move(Ep);
}
