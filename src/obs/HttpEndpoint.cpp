//===- obs/HttpEndpoint.cpp - Live introspection scrape server ------------===//

#include "obs/HttpEndpoint.h"

#include "obs/BuildInfo.h"
#include "obs/Export.h"
#include "obs/Metrics.h"
#include "support/StringUtils.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

using namespace dggt;
using namespace dggt::obs;

namespace {

const char *statusText(int Code) {
  switch (Code) {
  case 200:
    return "OK";
  case 400:
    return "Bad Request";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  case 503:
    return "Service Unavailable";
  }
  return "Internal Server Error";
}

bool setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

/// True when the DGGT_METRICS spec carries the explicit `insecure-bind`
/// entry — the operator's written consent to expose the unauthenticated
/// introspection surface beyond loopback. Read per start() call so a
/// test can flip it; the spec parser in Export.cpp accepts the entry as
/// a no-op (it is consumed here, not there).
bool insecureBindAllowed() {
  const char *Env = std::getenv("DGGT_METRICS");
  if (!Env)
    return false;
  for (const std::string &Item : split(Env, ","))
    if (trim(Item) == "insecure-bind")
      return true;
  return false;
}

/// Decodes %XX and '+' in a query-string component; invalid escapes pass
/// through verbatim (the filters they feed are substring matches, not
/// security decisions).
std::string urlDecode(std::string_view S) {
  auto Hex = [](char C) -> int {
    if (C >= '0' && C <= '9')
      return C - '0';
    if (C >= 'a' && C <= 'f')
      return C - 'a' + 10;
    if (C >= 'A' && C <= 'F')
      return C - 'A' + 10;
    return -1;
  };
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] == '+') {
      Out += ' ';
    } else if (S[I] == '%' && I + 2 < S.size() && Hex(S[I + 1]) >= 0 &&
               Hex(S[I + 2]) >= 0) {
      Out += static_cast<char>(Hex(S[I + 1]) * 16 + Hex(S[I + 2]));
      I += 2;
    } else {
      Out += S[I];
    }
  }
  return Out;
}

/// Splits "k1=v1&k2=v2" into decoded pairs.
std::vector<std::pair<std::string, std::string>>
parseQuery(std::string_view Query) {
  std::vector<std::pair<std::string, std::string>> Out;
  for (const std::string &Item : split(Query, "&")) {
    if (Item.empty())
      continue;
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos)
      Out.emplace_back(urlDecode(Item), "");
    else
      Out.emplace_back(urlDecode(Item.substr(0, Eq)),
                       urlDecode(Item.substr(Eq + 1)));
  }
  return Out;
}

/// The bounded label vocabulary of dggt_http_requests_total: known
/// routes keep their path, everything else collapses to "other" so a
/// URL-scanning client cannot mint unbounded label values.
std::string_view routeLabel(std::string_view Path) {
  if (Path == "/metrics" || Path == "/debug/traces" || Path == "/healthz" ||
      Path == "/readyz" || Path == "/statusz")
    return Path;
  return "other";
}

void countRequest(std::string_view Path, int Code) {
  if (!metricsEnabled())
    return;
  char CodeBuf[8];
  std::snprintf(CodeBuf, sizeof(CodeBuf), "%d", Code);
  registry()
      .counter("dggt_http_requests_total", {{"path", std::string(routeLabel(Path))},
                                            {"code", CodeBuf}})
      .inc();
}

obs::Histogram &scrapeLatencyMs() {
  static obs::Histogram &H =
      registry().histogram("dggt_http_scrape_latency_ms");
  return H;
}

} // namespace

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

/// One in-flight connection of the poll loop.
struct HttpEndpoint::Conn {
  int Fd = -1;
  std::string Buf; ///< Request bytes read so far.
  std::chrono::steady_clock::time_point Deadline;
};

HttpEndpoint::HttpEndpoint() : HttpEndpoint(Options()) {}

HttpEndpoint::HttpEndpoint(Options O) : Opts(std::move(O)) {}

HttpEndpoint::~HttpEndpoint() { stop(); }

bool HttpEndpoint::start(std::string &Error) {
  if (Running.load(std::memory_order_acquire))
    return true;

  int Fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int One = 1;
  setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Opts.Port);
  if (inet_pton(AF_INET, Opts.BindAddress.c_str(), &Addr.sin_addr) != 1) {
    Error = "bad bind address '" + Opts.BindAddress + "'";
    close(Fd);
    return false;
  }
  // The endpoint serves unauthenticated read-only introspection; leaving
  // loopback (anything outside 127.0.0.0/8, including 0.0.0.0) must be
  // the operator's written decision, not a config typo.
  if ((ntohl(Addr.sin_addr.s_addr) >> 24) != 127 && !insecureBindAllowed()) {
    Error = "refusing non-loopback bind address '" + Opts.BindAddress +
            "' (unauthenticated endpoint); add 'insecure-bind' to "
            "DGGT_METRICS to expose it beyond loopback";
    close(Fd);
    return false;
  }
  if (bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Error = "bind " + Opts.BindAddress + ":" + std::to_string(Opts.Port) +
            ": " + std::strerror(errno);
    close(Fd);
    return false;
  }
  if (listen(Fd, 16) != 0) {
    Error = std::string("listen: ") + std::strerror(errno);
    close(Fd);
    return false;
  }
  socklen_t Len = sizeof(Addr);
  if (getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0) {
    Error = std::string("getsockname: ") + std::strerror(errno);
    close(Fd);
    return false;
  }
  if (!setNonBlocking(Fd)) {
    Error = std::string("fcntl: ") + std::strerror(errno);
    close(Fd);
    return false;
  }
  if (pipe(WakeFds) != 0) {
    Error = std::string("pipe: ") + std::strerror(errno);
    close(Fd);
    WakeFds[0] = WakeFds[1] = -1;
    return false;
  }
  setNonBlocking(WakeFds[0]);

  ListenFd = Fd;
  BoundPort.store(ntohs(Addr.sin_port), std::memory_order_release);
  StopFlag.store(false, std::memory_order_release);
  Running.store(true, std::memory_order_release);
  Server = std::thread([this] { serverLoop(); });

  if (Opts.Announce) {
    // Exact prefix parsed by cmake/CheckEndpointOutput.cmake; flushed so
    // a supervisor reading a pipe sees the port before the first scrape.
    std::printf("dggt-http-endpoint: listening on %s:%u\n",
                Opts.BindAddress.c_str(), static_cast<unsigned>(port()));
    std::fflush(stdout);
  }
  return true;
}

void HttpEndpoint::stop() {
  if (!Running.exchange(false, std::memory_order_acq_rel))
    return;
  StopFlag.store(true, std::memory_order_release);
  if (WakeFds[1] >= 0) {
    char B = 'x';
    [[maybe_unused]] ssize_t W = write(WakeFds[1], &B, 1);
  }
  if (Server.joinable())
    Server.join();
  if (ListenFd >= 0)
    close(ListenFd);
  for (int &Fd : WakeFds)
    if (Fd >= 0)
      close(Fd);
  ListenFd = -1;
  WakeFds[0] = WakeFds[1] = -1;
  BoundPort.store(0, std::memory_order_release);
}

uint64_t HttpEndpoint::setHealthProvider(HealthProvider P) {
  std::lock_guard<std::mutex> L(ProvidersM);
  Health = std::move(P);
  HealthToken = Health ? NextProviderToken++ : 0;
  return HealthToken;
}

uint64_t HttpEndpoint::setStatusProvider(StatusProvider P) {
  std::lock_guard<std::mutex> L(ProvidersM);
  Status = std::move(P);
  StatusToken = Status ? NextProviderToken++ : 0;
  return StatusToken;
}

void HttpEndpoint::clearHealthProvider(uint64_t Token) {
  if (!Token)
    return;
  std::lock_guard<std::mutex> L(ProvidersM);
  if (HealthToken == Token) {
    Health = nullptr;
    HealthToken = 0;
  }
}

void HttpEndpoint::clearStatusProvider(uint64_t Token) {
  if (!Token)
    return;
  std::lock_guard<std::mutex> L(ProvidersM);
  if (StatusToken == Token) {
    Status = nullptr;
    StatusToken = 0;
  }
}

//===----------------------------------------------------------------------===//
// Server loop
//===----------------------------------------------------------------------===//

void HttpEndpoint::serverLoop() {
  std::vector<Conn> Conns;
  std::vector<pollfd> Pfds;

  auto CloseConn = [&](size_t I) {
    close(Conns[I].Fd);
    Conns.erase(Conns.begin() + static_cast<ptrdiff_t>(I));
  };

  /// Writes the whole response; the bodies are small and the peer is a
  /// scraper on loopback, so a short blocking write loop is fine.
  auto WriteAll = [&](int Fd, std::string_view Data) {
    size_t Off = 0;
    while (Off < Data.size()) {
      ssize_t N = send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
      if (N > 0) {
        Off += static_cast<size_t>(N);
        continue;
      }
      if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd P{Fd, POLLOUT, 0};
        if (poll(&P, 1, static_cast<int>(Opts.RequestTimeoutMs)) <= 0)
          return; // Peer stalled; drop the rest.
        continue;
      }
      return; // Peer went away.
    }
  };

  while (!StopFlag.load(std::memory_order_acquire)) {
    Pfds.clear();
    Pfds.push_back({ListenFd, POLLIN, 0});
    Pfds.push_back({WakeFds[0], POLLIN, 0});
    for (const Conn &C : Conns)
      Pfds.push_back({C.Fd, POLLIN, 0});

    // 250 ms cap so idle-connection sweeping and shutdown stay prompt
    // even if the wake pipe write were ever lost.
    int N = poll(Pfds.data(), Pfds.size(), 250);
    if (StopFlag.load(std::memory_order_acquire))
      break;
    if (N < 0) {
      if (errno == EINTR)
        continue;
      break;
    }

    // Only connections that existed when Pfds was built have a pollfd
    // (Pfds[I + 2] mirrors Conns[I] for I < Old); those accepted below
    // are first polled on the next iteration.
    size_t Old = Conns.size();

    // Accept new connections (bounded; beyond the cap: accept + close so
    // the backlog cannot fill with sockets we will never read).
    // SOCK_CLOEXEC so in-flight connection fds don't leak into children
    // across fork/exec, matching the listener.
    if (Pfds[0].revents & POLLIN) {
      while (true) {
        int Fd = accept4(ListenFd, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (Fd < 0)
          break;
        if (Conns.size() >= Opts.MaxConnections) {
          close(Fd);
          continue;
        }
        Conns.push_back({Fd, std::string(),
                         std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(Opts.RequestTimeoutMs)});
      }
    }
    if (Pfds[1].revents & POLLIN) {
      char Buf[16];
      while (read(WakeFds[0], Buf, sizeof(Buf)) > 0) {
      }
    }

    // Service readable connections. Iterate backwards so CloseConn's
    // erase cannot skip an entry or shift a lower index out from under
    // its pollfd.
    for (size_t I = Old; I-- > 0;) {
      short Re = Pfds[I + 2].revents;
      Conn &C = Conns[I];
      if (Re & (POLLERR | POLLHUP | POLLNVAL)) {
        CloseConn(I);
        continue;
      }
      // Deadline applies whether or not bytes arrived: a client
      // trickling one byte per poll round must not outlive the timeout.
      if (std::chrono::steady_clock::now() >= C.Deadline) {
        CloseConn(I);
        continue;
      }
      if (!(Re & POLLIN))
        continue;
      char Buf[4096];
      ssize_t R = recv(C.Fd, Buf, sizeof(Buf), 0);
      if (R == 0 || (R < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
        CloseConn(I);
        continue;
      }
      if (R > 0)
        C.Buf.append(Buf, static_cast<size_t>(R));

      size_t HeadEnd = C.Buf.find("\r\n\r\n");
      if (HeadEnd == std::string::npos) {
        if (C.Buf.size() > Opts.MaxRequestBytes) {
          // Oversized or never-terminating head: strict 400, close.
          std::string Resp = handleRequest(std::string_view());
          WriteAll(C.Fd, Resp);
          CloseConn(I);
        }
        continue;
      }
      std::string Resp = handleRequest(
          std::string_view(C.Buf.data(), HeadEnd));
      WriteAll(C.Fd, Resp);
      CloseConn(I);
    }
  }

  for (const Conn &C : Conns)
    close(C.Fd);
}

//===----------------------------------------------------------------------===//
// Request handling
//===----------------------------------------------------------------------===//

std::string HttpEndpoint::handleRequest(std::string_view Head) {
  ScopedLatencyMs Latency(scrapeLatencyMs());

  // Strict request line: exactly "METHOD SP TARGET SP HTTP/1.x", single
  // spaces, target starting with '/'. An empty Head is the oversized-
  // request sentinel from the read loop.
  std::string_view Line = Head.substr(0, Head.find("\r\n"));
  int Code = 400;
  std::string ContentType = "application/json";
  std::string Body;
  std::string_view Path = "";

  size_t Sp1 = Line.find(' ');
  size_t Sp2 = Sp1 == std::string_view::npos ? std::string_view::npos
                                             : Line.find(' ', Sp1 + 1);
  if (Sp1 != std::string_view::npos && Sp2 != std::string_view::npos &&
      Line.find(' ', Sp2 + 1) == std::string_view::npos && Sp1 > 0 &&
      Sp2 > Sp1 + 1 && Sp2 + 1 < Line.size()) {
    std::string_view Method = Line.substr(0, Sp1);
    std::string_view Target = Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);
    std::string_view Version = Line.substr(Sp2 + 1);
    if ((Version == "HTTP/1.1" || Version == "HTTP/1.0") &&
        Target.front() == '/') {
      Path = Target.substr(0, Target.find('?'));
      if (Method != "GET") {
        Code = 405;
        Body = "{\"error\":\"method not allowed; this endpoint is GET-only\"}";
      } else {
        Body = dispatch(Target, Code, ContentType);
      }
    } else {
      Body = "{\"error\":\"malformed request line\"}";
    }
  } else {
    Body = "{\"error\":\"malformed request line\"}";
  }

  Served.fetch_add(1, std::memory_order_relaxed);
  countRequest(Path, Code);

  std::string Resp;
  Resp.reserve(Body.size() + 160);
  Resp += "HTTP/1.1 ";
  Resp += std::to_string(Code);
  Resp += " ";
  Resp += statusText(Code);
  Resp += "\r\nContent-Type: ";
  Resp += ContentType;
  if (Code == 405)
    Resp += "\r\nAllow: GET";
  Resp += "\r\nContent-Length: ";
  Resp += std::to_string(Body.size());
  Resp += "\r\nConnection: close\r\n\r\n";
  Resp += Body;
  return Resp;
}

std::string HttpEndpoint::dispatch(std::string_view Target, int &Code,
                                   std::string &ContentType) {
  std::string_view Path = Target.substr(0, Target.find('?'));
  std::string_view Query = Target.size() > Path.size()
                               ? Target.substr(Path.size() + 1)
                               : std::string_view();
  Code = 200;
  ContentType = "application/json";

  if (Path == "/metrics") {
    ContentType = "text/plain; version=0.0.4; charset=utf-8";
    std::ostringstream OS;
    writePrometheusText(collectMetrics(), OS);
    return OS.str();
  }

  if (Path == "/debug/traces") {
    size_t Limit = SIZE_MAX;
    std::string NameFilter;
    for (const auto &[K, V] : parseQuery(Query)) {
      if (K == "limit") {
        if (std::optional<uint64_t> N = parseUnsigned(V))
          Limit = static_cast<size_t>(*N);
      } else if (K == "span") {
        NameFilter = V;
      }
    }
    std::ostringstream OS;
    std::shared_ptr<SpanRingSink> Ring = spanRing();
    OS << "{\"spans\":[";
    size_t Count = 0;
    if (Ring) {
      std::vector<SpanRecord> Spans = Ring->snapshot();
      if (!NameFilter.empty()) {
        std::erase_if(Spans, [&](const SpanRecord &S) {
          return S.Name.find(NameFilter) == std::string::npos;
        });
      }
      // ?limit keeps the *newest* N (the snapshot is oldest-first).
      size_t Begin = Spans.size() > Limit ? Spans.size() - Limit : 0;
      for (size_t I = Begin; I < Spans.size(); ++I) {
        if (Count++)
          OS << ",";
        writeSpanJson(Spans[I], OS);
      }
    }
    OS << "],\"count\":" << Count
       << ",\"ring_configured\":" << (Ring ? "true" : "false")
       << ",\"ring_capacity\":" << (Ring ? Ring->capacity() : 0)
       << ",\"overwritten\":" << (Ring ? Ring->overwritten() : 0)
       << ",\"dropped_by_sampling\":" << Tracer::droppedSpans() << "}";
    return OS.str();
  }

  if (Path == "/healthz" || Path == "/readyz") {
    HealthStatus St;
    std::string Detail = "no service registered";
    {
      std::lock_guard<std::mutex> L(ProvidersM);
      if (Health) {
        St = Health();
        Detail = St.Detail;
      }
    }
    bool Pass = Path == "/healthz" ? St.Healthy : St.Ready;
    Code = Pass ? 200 : 503;
    std::ostringstream OS;
    OS << "{\"status\":\"" << (Pass ? "ok" : "unavailable")
       << "\",\"ready\":" << (St.Ready ? "true" : "false")
       << ",\"healthy\":" << (St.Healthy ? "true" : "false")
       << ",\"detail\":\"" << escapeJson(Detail) << "\"}";
    return OS.str();
  }

  if (Path == "/statusz") {
    std::ostringstream OS;
    OS << "{\"build\":{\"version\":\"" << escapeJson(buildVersion())
       << "\",\"git_sha\":\"" << escapeJson(buildGitSha())
       << "\",\"sanitizers\":\"" << escapeJson(buildSanitizers())
       << "\"},\"uptime_seconds\":" << uptimeSeconds()
       << ",\"endpoint\":{\"port\":" << port()
       << ",\"requests_served\":" << requestsServed() << "}";
    {
      std::lock_guard<std::mutex> L(ProvidersM);
      if (Status)
        OS << ",\"service\":" << Status();
      else
        OS << ",\"service\":null";
    }
    OS << "}";
    return OS.str();
  }

  Code = 404;
  return "{\"error\":\"not found\",\"routes\":[\"/metrics\",\"/debug/traces\","
         "\"/healthz\",\"/readyz\",\"/statusz\"]}";
}

//===----------------------------------------------------------------------===//
// Global endpoint (http:PORT spec wiring)
//===----------------------------------------------------------------------===//

namespace {

struct GlobalEndpoint {
  std::mutex M;
  std::shared_ptr<HttpEndpoint> Ep;
};

GlobalEndpoint &globalEndpoint() {
  // Intentionally leaked, like the registry: service layers may look the
  // endpoint up during static teardown of their owners.
  static GlobalEndpoint *G = new GlobalEndpoint();
  return *G;
}

} // namespace

std::shared_ptr<HttpEndpoint> obs::httpEndpoint() {
  GlobalEndpoint &G = globalEndpoint();
  std::lock_guard<std::mutex> L(G.M);
  return G.Ep;
}

void obs::setHttpEndpoint(std::shared_ptr<HttpEndpoint> Ep) {
  GlobalEndpoint &G = globalEndpoint();
  std::lock_guard<std::mutex> L(G.M);
  G.Ep = std::move(Ep);
}
