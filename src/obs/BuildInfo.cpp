//===- obs/BuildInfo.cpp - Compile-time build identity --------------------===//

#include "obs/BuildInfo.h"

#include <chrono>

#ifndef DGGT_VERSION
#define DGGT_VERSION "unknown"
#endif
#ifndef DGGT_GIT_SHA
#define DGGT_GIT_SHA "unknown"
#endif
#ifndef DGGT_SANITIZERS
#define DGGT_SANITIZERS "none"
#endif

using namespace dggt;

std::string_view obs::buildVersion() { return DGGT_VERSION; }

std::string_view obs::buildGitSha() { return DGGT_GIT_SHA; }

std::string_view obs::buildSanitizers() { return DGGT_SANITIZERS; }

uint64_t obs::uptimeSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(Clock::now() - Epoch)
          .count());
}
