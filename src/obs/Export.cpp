//===- obs/Export.cpp - Pluggable metric/trace exporters ------------------===//

#include "obs/Export.h"

#include "obs/BuildInfo.h"
#include "obs/HttpEndpoint.h"
#include "obs/Profiler.h"
#include "obs/QueryLog.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <cinttypes>

#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

using namespace dggt;
using namespace dggt::obs;

MetricsSink::~MetricsSink() = default;

//===----------------------------------------------------------------------===//
// Formatting
//===----------------------------------------------------------------------===//

std::string obs::escapeJson(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string obs::escapePromLabel(std::string_view S) {
  // The exposition format defines exactly three label-value escapes:
  // backslash, double-quote and line feed. Tab, carriage return and
  // other control bytes pass through verbatim — escaping them (as the
  // JSON escaper does) would hand the scraper a literal backslash
  // sequence instead of the original value.
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

namespace {

/// Prometheus label block: {k1="v1",k2="v2"} or "" when empty. \p Extra
/// appends one more label (used for the histogram `le`).
std::string promLabels(const LabelSet &Labels,
                       const std::pair<std::string, std::string> *Extra =
                           nullptr) {
  if (Labels.empty() && !Extra)
    return "";
  std::string Out = "{";
  bool First = true;
  auto Append = [&](const std::pair<std::string, std::string> &KV) {
    if (!First)
      Out += ",";
    First = false;
    Out += KV.first + "=\"" + escapePromLabel(KV.second) + "\"";
  };
  for (const auto &KV : Labels)
    Append(KV);
  if (Extra)
    Append(*Extra);
  Out += "}";
  return Out;
}

std::string jsonLabels(const LabelSet &Labels) {
  std::string Out = "{";
  bool First = true;
  for (const auto &[K, V] : Labels) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\"" + escapeJson(K) + "\":\"" + escapeJson(V) + "\"";
  }
  Out += "}";
  return Out;
}

/// Formats a double the way Prometheus expects (no trailing garbage,
/// round-trippable precision).
std::string formatDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.10g", V);
  return Buf;
}

/// OpenMetrics exemplar suffix for a bucket line: ` # {trace_id="..."}
/// <value> <timestamp>`, or "" when the bucket has none.
std::string exemplarSuffix(const MetricSnapshot &S, size_t Bucket) {
  if (Bucket >= S.Exemplars.size() || S.Exemplars[Bucket].TraceId.empty())
    return "";
  const Exemplar &E = S.Exemplars[Bucket];
  return " # {trace_id=\"" + escapePromLabel(E.TraceId) + "\"} " +
         formatDouble(E.Value) + " " + formatDouble(E.UnixSeconds);
}

/// Rebuilds a Histogram percentile estimate from snapshot buckets (the
/// snapshot is decoupled from the live instrument).
double snapshotPercentile(const MetricSnapshot &S, double P) {
  if (S.Count == 0)
    return 0.0;
  double Rank = P / 100.0 * static_cast<double>(S.Count);
  uint64_t Cum = 0;
  for (size_t I = 0; I < S.Bounds.size(); ++I) {
    uint64_t InBucket = S.BucketCounts[I];
    if (InBucket == 0)
      continue;
    double PrevCum = static_cast<double>(Cum);
    Cum += InBucket;
    if (static_cast<double>(Cum) >= Rank) {
      double Lower = I == 0 ? 0.0 : S.Bounds[I - 1];
      double Frac = (Rank - PrevCum) / static_cast<double>(InBucket);
      if (Frac < 0)
        Frac = 0;
      if (Frac > 1)
        Frac = 1;
      return Lower + (S.Bounds[I] - Lower) * Frac;
    }
  }
  return S.Bounds.empty() ? 0.0 : S.Bounds.back();
}

} // namespace

void obs::writePrometheusText(const std::vector<MetricSnapshot> &Snap,
                              std::ostream &OS) {
  std::string LastTyped;
  for (const MetricSnapshot &S : Snap) {
    const char *Type = S.K == MetricSnapshot::Kind::Counter   ? "counter"
                       : S.K == MetricSnapshot::Kind::Gauge   ? "gauge"
                                                              : "histogram";
    if (S.Name != LastTyped) {
      OS << "# TYPE " << S.Name << " " << Type << "\n";
      LastTyped = S.Name;
    }
    switch (S.K) {
    case MetricSnapshot::Kind::Counter:
      OS << S.Name << promLabels(S.Labels) << " " << S.CounterValue << "\n";
      break;
    case MetricSnapshot::Kind::Gauge:
      OS << S.Name << promLabels(S.Labels) << " " << S.GaugeValue << "\n";
      break;
    case MetricSnapshot::Kind::Histogram: {
      uint64_t Cum = 0;
      for (size_t I = 0; I < S.Bounds.size(); ++I) {
        Cum += S.BucketCounts[I];
        std::pair<std::string, std::string> Le{"le",
                                               formatDouble(S.Bounds[I])};
        OS << S.Name << "_bucket" << promLabels(S.Labels, &Le) << " " << Cum
           << exemplarSuffix(S, I) << "\n";
      }
      Cum += S.BucketCounts[S.Bounds.size()];
      std::pair<std::string, std::string> Inf{"le", "+Inf"};
      OS << S.Name << "_bucket" << promLabels(S.Labels, &Inf) << " " << Cum
         << exemplarSuffix(S, S.Bounds.size()) << "\n";
      OS << S.Name << "_sum" << promLabels(S.Labels) << " "
         << formatDouble(S.Sum) << "\n";
      OS << S.Name << "_count" << promLabels(S.Labels) << " " << S.Count
         << "\n";
      break;
    }
    }
  }
}

void obs::writeSpanJson(const SpanRecord &Span, std::ostream &OS) {
  char TraceHex[33];
  std::snprintf(TraceHex, sizeof(TraceHex), "%016" PRIx64 "%016" PRIx64,
                Span.TraceHi, Span.TraceId);
  OS << "{\"name\":\"" << escapeJson(Span.Name) << "\",\"trace_id\":\""
     << TraceHex << "\",\"trace\":" << Span.TraceId
     << ",\"span\":" << Span.SpanId
     << ",\"parent\":" << Span.ParentId
     << ",\"start_s\":" << formatDouble(Span.StartSeconds)
     << ",\"duration_ms\":" << formatDouble(Span.DurationSeconds * 1000.0);
  if (!Span.Attrs.empty()) {
    OS << ",\"attrs\":{";
    for (size_t A = 0; A < Span.Attrs.size(); ++A)
      OS << (A ? "," : "") << "\"" << escapeJson(Span.Attrs[A].first)
         << "\":\"" << escapeJson(Span.Attrs[A].second) << "\"";
    OS << "}";
  }
  OS << "}";
}

void obs::writeMetricsJsonLines(const std::vector<MetricSnapshot> &Snap,
                                std::ostream &OS) {
  for (const MetricSnapshot &S : Snap) {
    OS << "{\"name\":\"" << escapeJson(S.Name)
       << "\",\"labels\":" << jsonLabels(S.Labels);
    switch (S.K) {
    case MetricSnapshot::Kind::Counter:
      OS << ",\"type\":\"counter\",\"value\":" << S.CounterValue;
      break;
    case MetricSnapshot::Kind::Gauge:
      OS << ",\"type\":\"gauge\",\"value\":" << S.GaugeValue;
      break;
    case MetricSnapshot::Kind::Histogram: {
      OS << ",\"type\":\"histogram\",\"count\":" << S.Count
         << ",\"sum\":" << formatDouble(S.Sum) << ",\"bounds\":[";
      for (size_t I = 0; I < S.Bounds.size(); ++I)
        OS << (I ? "," : "") << formatDouble(S.Bounds[I]);
      OS << "],\"buckets\":[";
      for (size_t I = 0; I < S.BucketCounts.size(); ++I)
        OS << (I ? "," : "") << S.BucketCounts[I];
      OS << "],\"p50\":" << formatDouble(snapshotPercentile(S, 50))
         << ",\"p90\":" << formatDouble(snapshotPercentile(S, 90))
         << ",\"p99\":" << formatDouble(snapshotPercentile(S, 99));
      break;
    }
    }
    OS << "}\n";
  }
}

//===----------------------------------------------------------------------===//
// Sinks
//===----------------------------------------------------------------------===//

namespace {

/// Resolves the spec's "stderr"/"stdout" destinations; null for files.
std::ostream *wellKnownStream(std::string_view Path) {
  if (Path == "stderr")
    return &std::cerr;
  if (Path == "stdout")
    return &std::cout;
  return nullptr;
}

} // namespace

TextMetricsSink::TextMetricsSink(Format F, std::ostream &OS) : F(F), OS(&OS) {}

TextMetricsSink::TextMetricsSink(Format F, std::string Path)
    : F(F), OS(wellKnownStream(Path)), Path(std::move(Path)) {}

void TextMetricsSink::exportMetrics(const std::vector<MetricSnapshot> &Snap) {
  std::lock_guard<std::mutex> L(M);
  auto WriteTo = [&](std::ostream &Out) {
    if (F == Format::Prometheus)
      writePrometheusText(Snap, Out);
    else
      writeMetricsJsonLines(Snap, Out);
    Out.flush();
  };
  if (OS) {
    WriteTo(*OS);
    return;
  }
  std::ofstream File(Path, std::ios::trunc);
  if (!File) {
    std::fprintf(stderr, "[obs] cannot write metrics to '%s'\n",
                 Path.c_str());
    return;
  }
  WriteTo(File);
}

struct JsonLinesTraceSink::Impl {
  std::mutex M;
  std::ofstream Owned;
  std::ostream *OS = nullptr;
};

JsonLinesTraceSink::JsonLinesTraceSink(std::ostream &OS)
    : I(std::make_unique<Impl>()) {
  I->OS = &OS;
}

JsonLinesTraceSink::JsonLinesTraceSink(std::string Path)
    : I(std::make_unique<Impl>()) {
  if (std::ostream *Known = wellKnownStream(Path)) {
    I->OS = Known;
    return;
  }
  I->Owned.open(Path, std::ios::trunc);
  if (!I->Owned)
    std::fprintf(stderr, "[obs] cannot write trace to '%s'\n", Path.c_str());
  I->OS = &I->Owned;
}

JsonLinesTraceSink::~JsonLinesTraceSink() = default;

void JsonLinesTraceSink::onSpan(const SpanRecord &Span) {
  std::lock_guard<std::mutex> L(I->M);
  std::ostream &OS = *I->OS;
  writeSpanJson(Span, OS);
  OS << "\n";
  OS.flush();
}

//===----------------------------------------------------------------------===//
// Collection
//===----------------------------------------------------------------------===//

std::vector<MetricSnapshot> obs::collectMetrics() {
  std::vector<MetricSnapshot> Snap = registry().snapshot();
  // Pull the fault-injection counts: they live in dggt_support (below
  // this library), so they are collected here rather than pushed.
  for (const FaultPointCounts &P : FaultInjector::instance().snapshotCounts()) {
    MetricSnapshot Hits;
    Hits.K = MetricSnapshot::Kind::Counter;
    Hits.Name = "dggt_fault_point_hits_total";
    Hits.Labels = {{"point", P.Point}};
    Hits.CounterValue = P.Hits;
    MetricSnapshot Fired = Hits;
    Fired.Name = "dggt_fault_point_fired_total";
    Fired.CounterValue = P.Fired;
    Snap.push_back(std::move(Hits));
    Snap.push_back(std::move(Fired));
  }
  // Tracer-side loss accounting, pulled for the same layering reason:
  // how many spans head sampling dropped, and how many the ring evicted.
  {
    MetricSnapshot Dropped;
    Dropped.K = MetricSnapshot::Kind::Counter;
    Dropped.Name = "dggt_trace_spans_dropped_total";
    Dropped.CounterValue = Tracer::droppedSpans();
    Snap.push_back(std::move(Dropped));
    MetricSnapshot TailKept;
    TailKept.K = MetricSnapshot::Kind::Counter;
    TailKept.Name = "dggt_trace_tail_kept_total";
    TailKept.CounterValue = Tracer::tailKeptTraces();
    Snap.push_back(std::move(TailKept));
    MetricSnapshot SeriesDropped;
    SeriesDropped.K = MetricSnapshot::Kind::Counter;
    SeriesDropped.Name = "dggt_metrics_series_dropped_total";
    SeriesDropped.CounterValue = registry().seriesDropped();
    Snap.push_back(std::move(SeriesDropped));
    MetricSnapshot QlogTotal;
    QlogTotal.K = MetricSnapshot::Kind::Counter;
    QlogTotal.Name = "dggt_querylog_records_total";
    QlogTotal.CounterValue = queryLog().total();
    Snap.push_back(std::move(QlogTotal));
    MetricSnapshot QlogOver;
    QlogOver.K = MetricSnapshot::Kind::Counter;
    QlogOver.Name = "dggt_querylog_overwritten_total";
    QlogOver.CounterValue = queryLog().overwritten();
    Snap.push_back(std::move(QlogOver));
  }
  // Profiler self-accounting, pulled like the tracer counters. The
  // handler/wall pair is the measured overhead ratio; dashboards alert
  // when handler_nanos/wall_nanos exceeds the 2% budget.
  {
    MetricSnapshot ProfSamples;
    ProfSamples.K = MetricSnapshot::Kind::Counter;
    ProfSamples.Name = "dggt_profiler_samples_total";
    ProfSamples.CounterValue = profiler().samplesTotal();
    Snap.push_back(std::move(ProfSamples));
    MetricSnapshot ProfDropped;
    ProfDropped.K = MetricSnapshot::Kind::Counter;
    ProfDropped.Name = "dggt_profiler_dropped_total";
    ProfDropped.CounterValue = profiler().droppedTotal();
    Snap.push_back(std::move(ProfDropped));
    MetricSnapshot ProfSelf;
    ProfSelf.K = MetricSnapshot::Kind::Counter;
    ProfSelf.Name = "dggt_profiler_handler_nanos_total";
    ProfSelf.CounterValue = profiler().handlerNanosTotal();
    Snap.push_back(std::move(ProfSelf));
    MetricSnapshot ProfWall;
    ProfWall.K = MetricSnapshot::Kind::Counter;
    ProfWall.Name = "dggt_profiler_wall_nanos_total";
    ProfWall.CounterValue = profiler().wallNanosTotal();
    Snap.push_back(std::move(ProfWall));
  }
  if (std::shared_ptr<SpanRingSink> Ring = spanRing()) {
    MetricSnapshot Over;
    Over.K = MetricSnapshot::Kind::Counter;
    Over.Name = "dggt_trace_ring_overwritten_total";
    Over.CounterValue = Ring->overwritten();
    Snap.push_back(std::move(Over));
  }
  // Build identity and freshness, synthesized on every collection so a
  // dashboard can tag any scrape (info-metric idiom: constant 1 gauge
  // carrying the identity in its labels).
  {
    MetricSnapshot Build;
    Build.K = MetricSnapshot::Kind::Gauge;
    Build.Name = "dggt_build_info";
    Build.Labels = {{"version", std::string(buildVersion())},
                    {"git_sha", std::string(buildGitSha())},
                    {"sanitizers", std::string(buildSanitizers())}};
    Build.GaugeValue = 1;
    Snap.push_back(std::move(Build));
    MetricSnapshot Up;
    Up.K = MetricSnapshot::Kind::Gauge;
    Up.Name = "dggt_uptime_seconds";
    Up.GaugeValue = static_cast<int64_t>(uptimeSeconds());
    Snap.push_back(std::move(Up));
  }
  return Snap;
}

//===----------------------------------------------------------------------===//
// DGGT_METRICS spec
//===----------------------------------------------------------------------===//

namespace {

/// Background thread flushing the configured file sinks every interval
/// ('flush:SECONDS'), so long runs update their prom:/jsonl: outputs
/// mid-flight instead of only at exit. Stopped (and joined) through an
/// atexit hook so sanitized builds see no leaked running thread.
class PeriodicFlusher {
public:
  explicit PeriodicFlusher(uint64_t Seconds) : IntervalMs(Seconds * 1000) {
    T = std::thread([this] { run(); });
  }

  void setIntervalSeconds(uint64_t Seconds) {
    {
      std::lock_guard<std::mutex> L(M);
      IntervalMs = Seconds * 1000;
    }
    CV.notify_all();
  }

  void stopAndJoin() {
    {
      std::lock_guard<std::mutex> L(M);
      if (Stop)
        return;
      Stop = true;
    }
    CV.notify_all();
    if (T.joinable())
      T.join();
  }

private:
  void run() {
    std::unique_lock<std::mutex> L(M);
    while (!Stop) {
      CV.wait_for(L, std::chrono::milliseconds(IntervalMs));
      if (Stop)
        break;
      L.unlock();
      obs::flushMetrics();
      L.lock();
    }
  }

  std::mutex M;
  std::condition_variable CV;
  uint64_t IntervalMs;
  bool Stop = false;
  std::thread T;
};

/// Exporters configured by configureFromSpec; flushed on demand and at
/// process exit.
struct ConfiguredExporters {
  std::mutex M;
  std::vector<std::unique_ptr<MetricsSink>> Sinks;
  std::shared_ptr<TraceSink> Trace;
  std::shared_ptr<SpanRingSink> Ring;
  std::unique_ptr<PeriodicFlusher> Flusher;
  std::shared_ptr<HttpEndpoint> Http;
  bool AtExitRegistered = false;
  bool StopAtExitRegistered = false;
};

ConfiguredExporters &exporters() {
  // Intentionally leaked (see MetricsRegistry::instance()): the atexit
  // flush must find the sinks alive regardless of destruction order.
  static ConfiguredExporters *E = new ConfiguredExporters();
  return *E;
}

/// atexit hook stopping the background threads the spec started (the
/// periodic flusher and the global HTTP endpoint) so no thread outlives
/// main into static destruction and sanitizers see every thread joined.
/// Everything these threads touch is intentionally leaked, so ordering
/// against the final-flush hook does not matter; an extra flush between
/// the two hooks is a harmless rewrite.
void stopBackgroundWorkAtExit() {
  ConfiguredExporters &Ex = exporters();
  std::unique_ptr<PeriodicFlusher> Flusher;
  std::shared_ptr<HttpEndpoint> Http;
  {
    std::lock_guard<std::mutex> L(Ex.M);
    Flusher = std::move(Ex.Flusher);
    Http = Ex.Http;
  }
  if (Flusher)
    Flusher->stopAndJoin();
  if (Http)
    Http->stop();
  // Disarm the sampling timer: a SIGPROF landing in a half-destructed
  // static is the one crash the profiler design must rule out.
  profiler().stop();
}

} // namespace

std::shared_ptr<SpanRingSink> obs::spanRing() {
  ConfiguredExporters &Ex = exporters();
  std::lock_guard<std::mutex> L(Ex.M);
  return Ex.Ring;
}

bool obs::configureFromSpec(std::string_view Spec, std::string &Error) {
  struct Entry {
    enum class Kind {
      On,
      Prom,
      Jsonl,
      Trace,
      TraceRing,
      Sample,
      Flush,
      Http,
      Qlog,
      QlogRing,
      Tail,
      Qcap,
      Prof,
    } K;
    std::string Dest;
    uint64_t N = 0; ///< Ring capacity / divisor / interval / port / ms.
  };
  std::vector<Entry> Parsed;

  for (const std::string &Item : split(Spec, ",")) {
    std::string_view E = trim(Item);
    if (E.empty())
      continue;
    if (E == "on") {
      Parsed.push_back({Entry::Kind::On, "", 0});
      continue;
    }
    if (E == "insecure-bind") {
      // Operator opt-in consumed by HttpEndpoint::start() (it re-reads
      // the env to decide whether a non-loopback bind is allowed);
      // accepted here so the spec still validates. Implies collection,
      // like every other entry.
      Parsed.push_back({Entry::Kind::On, "", 0});
      continue;
    }
    size_t Colon = E.find(':');
    if (Colon == std::string_view::npos) {
      Error = "entry '" + std::string(E) +
              "' is not 'on', 'insecure-bind' or '<exporter>:<dest>'";
      return false;
    }
    std::string_view Key = E.substr(0, Colon);
    std::string_view Dest = trim(E.substr(Colon + 1));
    if (Dest.empty()) {
      Error = "entry '" + std::string(E) + "' has an empty destination";
      return false;
    }
    Entry Out;
    Out.Dest = std::string(Dest);
    if (Key == "prom")
      Out.K = Entry::Kind::Prom;
    else if (Key == "jsonl")
      Out.K = Entry::Kind::Jsonl;
    else if (Key == "sample") {
      // Head sampling divisor: keep 1-in-N trace trees. Strict parse,
      // like every other numeric knob; 0 is meaningless.
      std::optional<uint64_t> N = parseUnsigned(Dest);
      if (!N || *N == 0) {
        Error = "sample divisor '" + std::string(Dest) +
                "' is not a positive integer";
        return false;
      }
      Out.K = Entry::Kind::Sample;
      Out.N = *N;
    } else if (Key == "flush") {
      // Background flush interval in whole seconds; 0 is meaningless.
      std::optional<uint64_t> N = parseUnsigned(Dest);
      if (!N || *N == 0) {
        Error = "flush interval '" + std::string(Dest) +
                "' is not a positive integer (seconds)";
        return false;
      }
      Out.K = Entry::Kind::Flush;
      Out.N = *N;
    } else if (Key == "http") {
      // Introspection endpoint port; 0 is valid (ephemeral, announced
      // on stdout), anything above 65535 is not a TCP port.
      std::optional<uint64_t> N = parseUnsigned(Dest);
      if (!N || *N > 65535) {
        Error = "http port '" + std::string(Dest) +
                "' is not a TCP port (0-65535)";
        return false;
      }
      Out.K = Entry::Kind::Http;
      Out.N = *N;
    } else if (Key == "tail") {
      // Tail-sampling latency threshold in whole milliseconds: any query
      // at least this slow keeps its full trace regardless of the head
      // sample: draw. 0 is meaningless (non-OK outcomes are always kept).
      std::optional<uint64_t> N = parseUnsigned(Dest);
      if (!N || *N == 0) {
        Error = "tail threshold '" + std::string(Dest) +
                "' is not a positive integer (milliseconds)";
        return false;
      }
      Out.K = Entry::Kind::Tail;
      Out.N = *N;
    } else if (Key == "qcap") {
      // Logged query-text byte cap; 0 is meaningless.
      std::optional<uint64_t> N = parseUnsigned(Dest);
      if (!N || *N == 0) {
        Error = "query-text cap '" + std::string(Dest) +
                "' is not a positive integer (bytes)";
        return false;
      }
      Out.K = Entry::Kind::Qcap;
      Out.N = *N;
    } else if (Key == "prof") {
      // Continuous sampling-profiler rate in Hz; the practical ceiling
      // keeps the handler under ~1ms/s of self-time (see obs/Profiler.h).
      std::optional<uint64_t> N = parseUnsigned(Dest);
      if (!N || *N == 0 || *N > 1000) {
        Error = "profiler rate '" + std::string(Dest) +
                "' is not a sampling rate in Hz (1-1000)";
        return false;
      }
      Out.K = Entry::Kind::Prof;
      Out.N = *N;
    } else if (Key == "qlog") {
      if (Dest == "ring" || Dest.rfind("ring:", 0) == 0) {
        // In-memory record ring, optional capacity: qlog:ring[:N].
        Out.K = Entry::Kind::QlogRing;
        Out.N = 1024;
        if (Dest.size() > 5) {
          std::optional<uint64_t> N = parseUnsigned(Dest.substr(5));
          if (!N || *N == 0) {
            Error = "ring capacity '" + std::string(Dest.substr(5)) +
                    "' is not a positive integer";
            return false;
          }
          Out.N = *N;
        }
      } else {
        Out.K = Entry::Kind::Qlog;
      }
    } else if (Key == "trace") {
      if (Dest == "ring" || Dest.rfind("ring:", 0) == 0) {
        // In-memory ring, optional capacity: trace:ring or trace:ring:N.
        Out.K = Entry::Kind::TraceRing;
        Out.N = 4096;
        if (Dest.size() > 5) {
          std::optional<uint64_t> N = parseUnsigned(Dest.substr(5));
          if (!N || *N == 0) {
            Error = "ring capacity '" + std::string(Dest.substr(5)) +
                    "' is not a positive integer";
            return false;
          }
          Out.N = *N;
        }
      } else {
        Out.K = Entry::Kind::Trace;
      }
    } else {
      Error = "unknown exporter '" + std::string(Key) + "' in '" +
              std::string(E) +
              "' (want prom:, jsonl:, trace:, qlog:, prof:, sample:, "
              "tail:, qcap:, flush:, http:, on or insecure-bind)";
      return false;
    }
    Parsed.push_back(std::move(Out));
  }
  if (Parsed.empty()) {
    Error = "empty spec (want 'on' or a comma list of prom:/jsonl:/trace: "
            "entries)";
    return false;
  }

  // Validated: apply. Every spec form implies metric collection.
  ConfiguredExporters &Ex = exporters();
  std::lock_guard<std::mutex> L(Ex.M);
  bool NeedsStopAtExit = false;
  for (Entry &E : Parsed) {
    switch (E.K) {
    case Entry::Kind::On:
      break;
    case Entry::Kind::Prom:
      Ex.Sinks.push_back(std::make_unique<TextMetricsSink>(
          TextMetricsSink::Format::Prometheus, std::move(E.Dest)));
      break;
    case Entry::Kind::Jsonl:
      Ex.Sinks.push_back(std::make_unique<TextMetricsSink>(
          TextMetricsSink::Format::JsonLines, std::move(E.Dest)));
      break;
    case Entry::Kind::Trace:
      Ex.Trace = std::make_shared<JsonLinesTraceSink>(std::move(E.Dest));
      Tracer::instance().setSink(Ex.Trace);
      break;
    case Entry::Kind::TraceRing:
      Ex.Ring = std::make_shared<SpanRingSink>(static_cast<size_t>(E.N));
      Ex.Trace = Ex.Ring;
      Tracer::instance().setSink(Ex.Ring);
      break;
    case Entry::Kind::Sample:
      Tracer::setSampleEvery(static_cast<unsigned>(E.N));
      break;
    case Entry::Kind::Tail:
      Tracer::setTailKeepMs(E.N);
      break;
    case Entry::Kind::Qcap:
      setQueryTextCapBytes(static_cast<size_t>(E.N));
      break;
    case Entry::Kind::Qlog:
      // A bad path is a runtime condition, not a spec error (matches the
      // http: bind-failure policy): warn, keep the rest of the spec.
      if (!QueryLog::instance().setJsonlPath(E.Dest))
        std::fprintf(stderr, "[obs] cannot write query log to '%s'\n",
                     E.Dest.c_str());
      break;
    case Entry::Kind::QlogRing:
      QueryLog::instance().configureRing(static_cast<size_t>(E.N));
      break;
    case Entry::Kind::Prof: {
      // Arms the continuous profiler for the process lifetime (stopped
      // by the same atexit hook that joins the flusher, so the timer
      // never fires into static destruction). Already-running is fine:
      // re-applied specs keep the existing run.
      Profiler::StartStatus St =
          profiler().start(static_cast<unsigned>(E.N), /*Seconds=*/0);
      if (St == Profiler::StartStatus::Error)
        std::fprintf(stderr, "[obs] cannot start profiler at %" PRIu64
                             " Hz\n",
                     E.N);
      else
        NeedsStopAtExit = true;
      break;
    }
    case Entry::Kind::Flush:
      if (Ex.Flusher)
        Ex.Flusher->setIntervalSeconds(E.N);
      else
        Ex.Flusher = std::make_unique<PeriodicFlusher>(E.N);
      NeedsStopAtExit = true;
      break;
    case Entry::Kind::Http: {
      // Replace any earlier endpoint (re-configuration in tests); the
      // old one stops serving before the new one binds, so a fixed port
      // can be reused. Known limitation: services constructed before
      // this point captured the old endpoint and their health/status
      // providers do not migrate — the replacement serves "no service
      // registered" until a new service is constructed. Migrating the
      // providers here would leave the new endpoint holding callbacks
      // whose owners deregister only on the old instance (dangling once
      // the owner dies), so re-configure before building services.
      if (Ex.Http)
        Ex.Http->stop();
      HttpEndpoint::Options HO;
      HO.Port = static_cast<uint16_t>(E.N);
      HO.Announce = true;
      auto Ep = std::make_shared<HttpEndpoint>(HO);
      std::string HttpError;
      if (!Ep->start(HttpError)) {
        std::fprintf(stderr, "[obs] http endpoint on port %u failed: %s\n",
                     static_cast<unsigned>(E.N), HttpError.c_str());
        break;
      }
      Ex.Http = Ep;
      setHttpEndpoint(std::move(Ep));
      NeedsStopAtExit = true;
      break;
    }
    }
  }
  setMetricsEnabled(true);
  // Anchor the uptime epoch at configuration time (first call wins).
  uptimeSeconds();
  if (NeedsStopAtExit && !Ex.StopAtExitRegistered) {
    Ex.StopAtExitRegistered = true;
    std::atexit([] { stopBackgroundWorkAtExit(); });
  }
  if (!Ex.Sinks.empty() && !Ex.AtExitRegistered) {
    Ex.AtExitRegistered = true;
    std::atexit([] { flushMetrics(); });
  }
  return true;
}

void obs::applyEnvSpec() {
  const char *Env = std::getenv("DGGT_METRICS");
  if (!Env || !*Env)
    return;
  // Idempotent per distinct value, like applyHarnessFaultSpec().
  static std::mutex M;
  static std::string Applied;
  std::lock_guard<std::mutex> L(M);
  if (Applied == Env)
    return;
  std::string Error;
  if (!configureFromSpec(Env, Error))
    std::fprintf(stderr,
                 "[obs] ignoring invalid DGGT_METRICS='%s': %s\n", Env,
                 Error.c_str());
  Applied = Env;
}

void obs::flushMetrics() {
  // Collect outside the exporters lock: collectMetrics() reads the
  // configured span ring through spanRing(), which takes the same lock.
  // Sink pointers stay valid unlocked — sinks are only ever appended,
  // and the registry is leaked, for the process lifetime.
  ConfiguredExporters &Ex = exporters();
  std::vector<MetricsSink *> Sinks;
  {
    std::lock_guard<std::mutex> L(Ex.M);
    for (const std::unique_ptr<MetricsSink> &S : Ex.Sinks)
      Sinks.push_back(S.get());
  }
  if (Sinks.empty())
    return;
  std::vector<MetricSnapshot> Snap = collectMetrics();
  for (MetricsSink *S : Sinks)
    S->exportMetrics(Snap);
}
