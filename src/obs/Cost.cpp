//===- obs/Cost.cpp - Per-query DP-core cost attribution ------------------===//

#include "obs/Cost.h"

#include <cinttypes>
#include <cstdio>

using namespace dggt::obs;

CostCounters &dggt::obs::queryCost() {
  // Plain POD thread-local: no heap behind it, so unlike the search
  // workspace it needs no intentional-leak registration.
  static thread_local CostCounters C;
  return C;
}

std::string dggt::obs::costCountersJson(const CostCounters &C) {
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"populated\":%s,\"path_searches\":%" PRIu64
      ",\"path_cache_hits\":%" PRIu64 ",\"node_visits\":%" PRIu64
      ",\"in_edge_scans\":%" PRIu64 ",\"bitset_words\":%" PRIu64
      ",\"merge_candidates\":%" PRIu64 ",\"merge_survivors\":%" PRIu64
      ",\"conflict_checks\":%" PRIu64 ",\"cgt_fusion_ops\":%" PRIu64
      ",\"arena_high_water_bytes\":%" PRIu64 "}",
      C.Populated ? "true" : "false", C.PathSearches, C.PathCacheHits,
      C.NodeVisits, C.InEdgeScans, C.BitsetWordsTouched, C.MergeCandidates,
      C.MergeSurvivors, C.ConflictChecks, C.CgtFusionOps,
      C.ArenaHighWaterBytes);
  return Buf;
}
