//===- obs/Trace.cpp - Hierarchical spans ---------------------------------===//

#include "obs/Trace.h"

#include <cinttypes>
#include <cstdio>

using namespace dggt;
using namespace dggt::obs;

TraceSink::~TraceSink() = default;

std::atomic<bool> Tracer::Enabled{false};
std::atomic<unsigned> Tracer::SampleEvery{1};
std::atomic<uint64_t> Tracer::RootCounter{0};
std::atomic<uint64_t> Tracer::DroppedSpans{0};

namespace {

/// Per-thread parenting state. A root span (empty stack) opens a new
/// trace id; children inherit it.
struct ThreadSpanStack {
  uint64_t TraceId = 0;
  std::vector<uint64_t> Stack;
  /// Open spans suppressed by head sampling on this thread. While > 0,
  /// every new span is suppressed (a dropped root drops its whole tree).
  unsigned SuppressedDepth = 0;
};

ThreadSpanStack &threadStack() {
  thread_local ThreadSpanStack S;
  return S;
}

uint64_t nextId() {
  static std::atomic<uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

Budget::Clock::time_point tracerEpoch() {
  static const Budget::Clock::time_point Epoch = Budget::Clock::now();
  return Epoch;
}

double sinceEpoch(Budget::Clock::time_point T) {
  return std::chrono::duration<double>(T - tracerEpoch()).count();
}

} // namespace

Tracer &Tracer::instance() {
  // Intentionally leaked (see MetricsRegistry::instance()): spans in
  // static destructors must find a live tracer.
  static Tracer *T = new Tracer();
  return *T;
}

void Tracer::setSink(std::shared_ptr<TraceSink> NewSink) {
  std::lock_guard<std::mutex> L(M);
  Sink = std::move(NewSink);
  Enabled.store(Sink != nullptr, std::memory_order_relaxed);
}

std::shared_ptr<TraceSink> Tracer::sink() const {
  std::lock_guard<std::mutex> L(M);
  return Sink;
}

SpanRingSink::SpanRingSink(size_t Capacity)
    : Cap(Capacity == 0 ? 1 : Capacity) {
  Ring.reserve(Cap);
}

void SpanRingSink::onSpan(const SpanRecord &Span) {
  std::lock_guard<std::mutex> L(M);
  if (Ring.size() < Cap) {
    Ring.push_back(Span);
    Next = Ring.size() % Cap; // Lands on 0 exactly when the ring fills.
    return;
  }
  Ring[Next] = Span;
  Next = (Next + 1) % Cap;
  Wrapped = true;
  Overwritten.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> SpanRingSink::snapshot() const {
  std::lock_guard<std::mutex> L(M);
  std::vector<SpanRecord> Out;
  Out.reserve(Ring.size());
  if (!Wrapped) {
    Out = Ring;
    return Out;
  }
  for (size_t I = 0; I < Ring.size(); ++I)
    Out.push_back(Ring[(Next + I) % Ring.size()]);
  return Out;
}

ScopedSpan::ScopedSpan(std::string_view Name) {
  if (!Tracer::enabled())
    return;
  ThreadSpanStack &S = threadStack();
  // Head sampling: inside a dropped tree, or a fresh root that loses the
  // 1-in-N draw. Suppressed spans still track nesting depth so the tree
  // boundary is known, but record nothing and never reach the sink.
  if (S.SuppressedDepth > 0) {
    ++S.SuppressedDepth;
    Suppressed = true;
    Tracer::DroppedSpans.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (S.Stack.empty()) {
    unsigned N = Tracer::sampleEvery();
    if (N > 1 &&
        Tracer::RootCounter.fetch_add(1, std::memory_order_relaxed) % N != 0) {
      S.SuppressedDepth = 1;
      Suppressed = true;
      Tracer::DroppedSpans.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  Active = true;
  if (S.Stack.empty())
    S.TraceId = nextId();
  Rec.TraceId = S.TraceId;
  Rec.SpanId = nextId();
  Rec.ParentId = S.Stack.empty() ? 0 : S.Stack.back();
  Rec.Name = std::string(Name);
  S.Stack.push_back(Rec.SpanId);
  Start = Budget::Clock::now();
  Rec.StartSeconds = sinceEpoch(Start);
}

ScopedSpan::~ScopedSpan() {
  if (Suppressed) {
    ThreadSpanStack &S = threadStack();
    if (S.SuppressedDepth > 0)
      --S.SuppressedDepth;
    return;
  }
  if (!Active)
    return;
  Rec.DurationSeconds =
      std::chrono::duration<double>(Budget::Clock::now() - Start).count();
  ThreadSpanStack &S = threadStack();
  // Pop our own id; an interleaving bug would desynchronize parenting,
  // so recover by unwinding to it.
  while (!S.Stack.empty()) {
    uint64_t Top = S.Stack.back();
    S.Stack.pop_back();
    if (Top == Rec.SpanId)
      break;
  }
  if (std::shared_ptr<TraceSink> Out = Tracer::instance().sink())
    Out->onSpan(Rec);
}

void ScopedSpan::attr(std::string_view Key, std::string_view Value) {
  if (!Active)
    return;
  Rec.Attrs.emplace_back(std::string(Key), std::string(Value));
}

void ScopedSpan::attr(std::string_view Key, uint64_t Value) {
  if (!Active)
    return;
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, Value);
  Rec.Attrs.emplace_back(std::string(Key), Buf);
}

void ScopedSpan::attr(std::string_view Key, double Value) {
  if (!Active)
    return;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
  Rec.Attrs.emplace_back(std::string(Key), Buf);
}
