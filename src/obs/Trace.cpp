//===- obs/Trace.cpp - Hierarchical spans ---------------------------------===//

#include "obs/Trace.h"

#include <cinttypes>
#include <cstdio>

using namespace dggt;
using namespace dggt::obs;

TraceSink::~TraceSink() = default;

std::atomic<bool> Tracer::Enabled{false};

namespace {

/// Per-thread parenting state. A root span (empty stack) opens a new
/// trace id; children inherit it.
struct ThreadSpanStack {
  uint64_t TraceId = 0;
  std::vector<uint64_t> Stack;
};

ThreadSpanStack &threadStack() {
  thread_local ThreadSpanStack S;
  return S;
}

uint64_t nextId() {
  static std::atomic<uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

Budget::Clock::time_point tracerEpoch() {
  static const Budget::Clock::time_point Epoch = Budget::Clock::now();
  return Epoch;
}

double sinceEpoch(Budget::Clock::time_point T) {
  return std::chrono::duration<double>(T - tracerEpoch()).count();
}

} // namespace

Tracer &Tracer::instance() {
  // Intentionally leaked (see MetricsRegistry::instance()): spans in
  // static destructors must find a live tracer.
  static Tracer *T = new Tracer();
  return *T;
}

void Tracer::setSink(std::shared_ptr<TraceSink> NewSink) {
  std::lock_guard<std::mutex> L(M);
  Sink = std::move(NewSink);
  Enabled.store(Sink != nullptr, std::memory_order_relaxed);
}

std::shared_ptr<TraceSink> Tracer::sink() const {
  std::lock_guard<std::mutex> L(M);
  return Sink;
}

ScopedSpan::ScopedSpan(std::string_view Name) {
  if (!Tracer::enabled())
    return;
  Active = true;
  ThreadSpanStack &S = threadStack();
  if (S.Stack.empty())
    S.TraceId = nextId();
  Rec.TraceId = S.TraceId;
  Rec.SpanId = nextId();
  Rec.ParentId = S.Stack.empty() ? 0 : S.Stack.back();
  Rec.Name = std::string(Name);
  S.Stack.push_back(Rec.SpanId);
  Start = Budget::Clock::now();
  Rec.StartSeconds = sinceEpoch(Start);
}

ScopedSpan::~ScopedSpan() {
  if (!Active)
    return;
  Rec.DurationSeconds =
      std::chrono::duration<double>(Budget::Clock::now() - Start).count();
  ThreadSpanStack &S = threadStack();
  // Pop our own id; an interleaving bug would desynchronize parenting,
  // so recover by unwinding to it.
  while (!S.Stack.empty()) {
    uint64_t Top = S.Stack.back();
    S.Stack.pop_back();
    if (Top == Rec.SpanId)
      break;
  }
  if (std::shared_ptr<TraceSink> Out = Tracer::instance().sink())
    Out->onSpan(Rec);
}

void ScopedSpan::attr(std::string_view Key, std::string_view Value) {
  if (!Active)
    return;
  Rec.Attrs.emplace_back(std::string(Key), std::string(Value));
}

void ScopedSpan::attr(std::string_view Key, uint64_t Value) {
  if (!Active)
    return;
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, Value);
  Rec.Attrs.emplace_back(std::string(Key), Buf);
}

void ScopedSpan::attr(std::string_view Key, double Value) {
  if (!Active)
    return;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
  Rec.Attrs.emplace_back(std::string(Key), Buf);
}
