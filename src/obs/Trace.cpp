//===- obs/Trace.cpp - Hierarchical spans ---------------------------------===//

#include "obs/Trace.h"

#include "support/ThreadPool.h"

#include <cinttypes>
#include <cstdio>

using namespace dggt;
using namespace dggt::obs;

TraceSink::~TraceSink() = default;

std::atomic<bool> Tracer::Enabled{false};
std::atomic<unsigned> Tracer::SampleEvery{1};
std::atomic<uint64_t> Tracer::RootCounter{0};
std::atomic<uint64_t> Tracer::DroppedSpans{0};
std::atomic<uint64_t> Tracer::TailKeepMs{0};
std::atomic<uint64_t> Tracer::TailKept{0};

namespace {

/// Per-thread parenting state. A root span (empty stack) opens a new
/// trace id; children inherit it. While a QueryContext is adopted
/// (ScopedQueryContext), roots parent under the context instead.
struct ThreadSpanStack {
  uint64_t TraceId = 0;
  uint64_t TraceHi = 0;
  std::vector<uint64_t> Stack;
  /// Open spans suppressed by head sampling on this thread. While > 0,
  /// every new span is suppressed (a dropped root drops its whole tree).
  unsigned SuppressedDepth = 0;
  /// Adopted QueryContext state (ScopedQueryContext).
  uint64_t BaseParent = 0;
  std::shared_ptr<TraceBuffer> Buffer;
  bool Adopted = false;
  bool CtxSampled = false;
};

ThreadSpanStack &threadStack() {
  thread_local ThreadSpanStack S;
  return S;
}

uint64_t nextId() {
  static std::atomic<uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

/// splitmix64 finalizer: spreads the sequential id counter over the full
/// 64-bit space so propagated trace ids look like W3C ids, not serials.
uint64_t mixId(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

Budget::Clock::time_point tracerEpoch() {
  static const Budget::Clock::time_point Epoch = Budget::Clock::now();
  return Epoch;
}

double sinceEpoch(Budget::Clock::time_point T) {
  return std::chrono::duration<double>(T - tracerEpoch()).count();
}

int hexVal(char C) {
  if (C >= '0' && C <= '9')
    return C - '0';
  if (C >= 'a' && C <= 'f')
    return C - 'a' + 10;
  if (C >= 'A' && C <= 'F')
    return C - 'A' + 10;
  return -1;
}

/// Parses exactly \p Digits hex chars from \p S into \p Out.
bool parseHexField(std::string_view S, size_t Digits, uint64_t &Out) {
  if (S.size() != Digits)
    return false;
  uint64_t V = 0;
  for (char C : S) {
    int H = hexVal(C);
    if (H < 0)
      return false;
    V = (V << 4) | static_cast<uint64_t>(H);
  }
  Out = V;
  return true;
}

/// ThreadPool context wrapper: captures the submitting thread's trace
/// position at trySubmit() time and restores it around the task in the
/// worker, so pool-crossing work keeps its trace instead of starting an
/// orphan root. Installed once via the registrar below; tasks submitted
/// outside any trace pass through untouched.
std::function<void()> wrapTaskWithTraceContext(std::function<void()> Fn) {
  QueryContext Ctx = currentQueryContext();
  if (!Ctx.valid())
    return Fn;
  return [Ctx = std::move(Ctx), Fn = std::move(Fn)]() {
    ScopedQueryContext Guard(Ctx);
    Fn();
  };
}

struct TaskWrapperRegistrar {
  TaskWrapperRegistrar() {
    ThreadPool::setTaskWrapper(&wrapTaskWithTraceContext);
  }
} RegisterTaskWrapper;

} // namespace

//===----------------------------------------------------------------------===//
// TraceBuffer
//===----------------------------------------------------------------------===//

TraceBuffer::TraceBuffer(size_t Capacity) : Cap(Capacity == 0 ? 1 : Capacity) {}

void TraceBuffer::add(const SpanRecord &Span) {
  std::shared_ptr<TraceSink> Direct;
  {
    std::lock_guard<std::mutex> L(M);
    if (!Finished) {
      if (Spans.size() < Cap) {
        Spans.push_back(Span);
        return;
      }
      Tracer::DroppedSpans.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Late span (a hedge loser unwinding after the winner finished the
    // query): forward it when the trace was kept, drop it otherwise.
    if (!Kept) {
      Tracer::DroppedSpans.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Direct = Tracer::instance().sink();
  }
  if (Direct)
    Direct->onSpan(Span);
}

void TraceBuffer::finish(bool Keep) {
  std::vector<SpanRecord> Flush;
  {
    std::lock_guard<std::mutex> L(M);
    if (Finished)
      return;
    Finished = true;
    Kept = Keep;
    if (!Keep) {
      Tracer::DroppedSpans.fetch_add(Spans.size(),
                                     std::memory_order_relaxed);
      Spans.clear();
      return;
    }
    Flush.swap(Spans);
  }
  if (std::shared_ptr<TraceSink> Out = Tracer::instance().sink())
    for (const SpanRecord &S : Flush)
      Out->onSpan(S);
}

bool TraceBuffer::finished() const {
  std::lock_guard<std::mutex> L(M);
  return Finished;
}

//===----------------------------------------------------------------------===//
// QueryContext
//===----------------------------------------------------------------------===//

std::string QueryContext::traceIdHex() const {
  char Buf[33];
  std::snprintf(Buf, sizeof(Buf), "%016" PRIx64 "%016" PRIx64, TraceHi,
                TraceLo);
  return Buf;
}

QueryContext dggt::obs::startQueryContext() {
  QueryContext Ctx;
  Ctx.TraceLo = nextId();
  Ctx.TraceHi = mixId(Ctx.TraceLo);
  if (Tracer::enabled()) {
    unsigned N = Tracer::sampleEvery();
    Ctx.Sampled =
        N <= 1 ||
        Tracer::RootCounter.fetch_add(1, std::memory_order_relaxed) % N == 0;
    Ctx.Buffer = std::make_shared<TraceBuffer>();
  }
  return Ctx;
}

bool dggt::obs::parseTraceparent(std::string_view Header, QueryContext &Ctx) {
  // 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags> = 55 chars.
  if (Header.size() != 55 || Header[2] != '-' || Header[35] != '-' ||
      Header[52] != '-')
    return false;
  uint64_t Version = 0, Hi = 0, Lo = 0, Parent = 0, Flags = 0;
  if (!parseHexField(Header.substr(0, 2), 2, Version) ||
      !parseHexField(Header.substr(3, 16), 16, Hi) ||
      !parseHexField(Header.substr(19, 16), 16, Lo) ||
      !parseHexField(Header.substr(36, 16), 16, Parent) ||
      !parseHexField(Header.substr(53, 2), 2, Flags))
    return false;
  // All-zero trace or parent ids are invalid per the W3C spec; version
  // 0xff is reserved.
  if ((Hi | Lo) == 0 || Parent == 0 || Version == 0xff)
    return false;
  Ctx.TraceHi = Hi;
  Ctx.TraceLo = Lo;
  Ctx.ParentSpan = Parent;
  Ctx.Sampled = (Flags & 1) != 0;
  return true;
}

std::string dggt::obs::traceparentHeader(const QueryContext &Ctx) {
  char Buf[56];
  std::snprintf(Buf, sizeof(Buf),
                "00-%016" PRIx64 "%016" PRIx64 "-%016" PRIx64 "-%02x",
                Ctx.TraceHi, Ctx.TraceLo, Ctx.ParentSpan,
                Ctx.Sampled ? 1u : 0u);
  return Buf;
}

QueryContext dggt::obs::currentQueryContext() {
  ThreadSpanStack &S = threadStack();
  QueryContext Ctx;
  if (S.SuppressedDepth > 0)
    return Ctx; // Inside a dropped tree: nothing worth carrying.
  if (S.Adopted) {
    Ctx.TraceHi = S.TraceHi;
    Ctx.TraceLo = S.TraceId;
    Ctx.ParentSpan = S.Stack.empty() ? S.BaseParent : S.Stack.back();
    Ctx.Sampled = S.CtxSampled;
    Ctx.Buffer = S.Buffer;
  } else if (!S.Stack.empty()) {
    // A legacy thread-local trace: a live span means it survived the
    // head draw, so a capture of it is sampled by construction.
    Ctx.TraceHi = S.TraceHi;
    Ctx.TraceLo = S.TraceId;
    Ctx.ParentSpan = S.Stack.back();
    Ctx.Sampled = true;
  }
  Ctx.Recorded = true;
  return Ctx;
}

void dggt::obs::attachTraceBuffer(QueryContext &Ctx) {
  if (Tracer::enabled() && !Ctx.Buffer)
    Ctx.Buffer = std::make_shared<TraceBuffer>();
}

uint64_t dggt::obs::newSpanId() { return nextId(); }

double dggt::obs::nowSecondsSinceEpoch() {
  return sinceEpoch(Budget::Clock::now());
}

uint64_t dggt::obs::emitSpan(const QueryContext &Ctx, SpanRecord Span) {
  if (Span.SpanId == 0)
    Span.SpanId = nextId();
  if (!Tracer::enabled() || !Ctx.valid())
    return Span.SpanId;
  Span.TraceId = Ctx.TraceLo;
  Span.TraceHi = Ctx.TraceHi;
  if (Ctx.Buffer) {
    Ctx.Buffer->add(Span);
  } else if (Ctx.Sampled) {
    if (std::shared_ptr<TraceSink> Out = Tracer::instance().sink())
      Out->onSpan(Span);
  } else {
    Tracer::DroppedSpans.fetch_add(1, std::memory_order_relaxed);
  }
  return Span.SpanId;
}

bool dggt::obs::finishQueryTrace(const QueryContext &Ctx, double TotalMs,
                                 bool OkOutcome) {
  if (!Ctx.valid())
    return false;
  uint64_t Tail = Tracer::tailKeepMs();
  bool Keep = Ctx.Sampled || !OkOutcome ||
              (Tail > 0 && TotalMs >= static_cast<double>(Tail));
  if (!Ctx.Buffer)
    return Ctx.Sampled && Tracer::enabled();
  if (Keep && !Ctx.Sampled)
    Tracer::TailKept.fetch_add(1, std::memory_order_relaxed);
  Ctx.Buffer->finish(Keep);
  return Keep;
}

//===----------------------------------------------------------------------===//
// Tracer / SpanRingSink
//===----------------------------------------------------------------------===//

Tracer &Tracer::instance() {
  // Intentionally leaked (see MetricsRegistry::instance()): spans in
  // static destructors must find a live tracer.
  static Tracer *T = new Tracer();
  return *T;
}

void Tracer::setSink(std::shared_ptr<TraceSink> NewSink) {
  std::lock_guard<std::mutex> L(M);
  Sink = std::move(NewSink);
  Enabled.store(Sink != nullptr, std::memory_order_relaxed);
}

std::shared_ptr<TraceSink> Tracer::sink() const {
  std::lock_guard<std::mutex> L(M);
  return Sink;
}

SpanRingSink::SpanRingSink(size_t Capacity)
    : Cap(Capacity == 0 ? 1 : Capacity) {
  Ring.reserve(Cap);
}

void SpanRingSink::onSpan(const SpanRecord &Span) {
  std::lock_guard<std::mutex> L(M);
  if (Ring.size() < Cap) {
    Ring.push_back(Span);
    Next = Ring.size() % Cap; // Lands on 0 exactly when the ring fills.
    return;
  }
  Ring[Next] = Span;
  Next = (Next + 1) % Cap;
  Wrapped = true;
  Overwritten.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> SpanRingSink::snapshot() const {
  std::lock_guard<std::mutex> L(M);
  std::vector<SpanRecord> Out;
  Out.reserve(Ring.size());
  if (!Wrapped) {
    Out = Ring;
    return Out;
  }
  for (size_t I = 0; I < Ring.size(); ++I)
    Out.push_back(Ring[(Next + I) % Ring.size()]);
  return Out;
}

//===----------------------------------------------------------------------===//
// ScopedQueryContext
//===----------------------------------------------------------------------===//

ScopedQueryContext::ScopedQueryContext(const QueryContext &Ctx) {
  if (!Ctx.valid())
    return;
  ThreadSpanStack &S = threadStack();
  Installed = true;
  SavedTraceId = S.TraceId;
  SavedTraceHi = S.TraceHi;
  SavedBaseParent = S.BaseParent;
  SavedStack = std::move(S.Stack);
  SavedSuppressedDepth = S.SuppressedDepth;
  SavedBuffer = std::move(S.Buffer);
  SavedAdopted = S.Adopted;
  SavedSampled = S.CtxSampled;
  S.TraceId = Ctx.TraceLo;
  S.TraceHi = Ctx.TraceHi;
  S.BaseParent = Ctx.ParentSpan;
  S.Stack.clear();
  S.SuppressedDepth = 0;
  S.Buffer = Ctx.Buffer;
  S.Adopted = true;
  S.CtxSampled = Ctx.Sampled;
}

ScopedQueryContext::~ScopedQueryContext() {
  if (!Installed)
    return;
  ThreadSpanStack &S = threadStack();
  S.TraceId = SavedTraceId;
  S.TraceHi = SavedTraceHi;
  S.BaseParent = SavedBaseParent;
  S.Stack = std::move(SavedStack);
  S.SuppressedDepth = SavedSuppressedDepth;
  S.Buffer = std::move(SavedBuffer);
  S.Adopted = SavedAdopted;
  S.CtxSampled = SavedSampled;
}

//===----------------------------------------------------------------------===//
// ScopedSpan
//===----------------------------------------------------------------------===//

ScopedSpan::ScopedSpan(std::string_view Name) {
  if (!Tracer::enabled())
    return;
  ThreadSpanStack &S = threadStack();
  // Head sampling: inside a dropped tree, or a fresh root that loses the
  // 1-in-N draw. Suppressed spans still track nesting depth so the tree
  // boundary is known, but record nothing and never reach the sink.
  if (S.SuppressedDepth > 0) {
    ++S.SuppressedDepth;
    Suppressed = true;
    Tracer::DroppedSpans.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (S.Stack.empty()) {
    if (S.Adopted) {
      // The adopted context made the sampling decision at its root.
      // Without a buffer an unsampled context records nothing; with one,
      // spans are buffered and the keep decision is tail-based.
      if (!S.CtxSampled && !S.Buffer) {
        S.SuppressedDepth = 1;
        Suppressed = true;
        Tracer::DroppedSpans.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    } else {
      unsigned N = Tracer::sampleEvery();
      if (N > 1 && Tracer::RootCounter.fetch_add(
                       1, std::memory_order_relaxed) %
                           N !=
                       0) {
        S.SuppressedDepth = 1;
        Suppressed = true;
        Tracer::DroppedSpans.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      S.TraceId = nextId();
      S.TraceHi = 0;
    }
  }
  Active = true;
  Rec.TraceId = S.TraceId;
  Rec.TraceHi = S.TraceHi;
  Rec.SpanId = nextId();
  Rec.ParentId = S.Stack.empty() ? (S.Adopted ? S.BaseParent : 0)
                                 : S.Stack.back();
  Rec.Name = std::string(Name);
  S.Stack.push_back(Rec.SpanId);
  Start = Budget::Clock::now();
  Rec.StartSeconds = sinceEpoch(Start);
}

ScopedSpan::~ScopedSpan() {
  if (Suppressed) {
    ThreadSpanStack &S = threadStack();
    if (S.SuppressedDepth > 0)
      --S.SuppressedDepth;
    return;
  }
  if (!Active)
    return;
  Rec.DurationSeconds =
      std::chrono::duration<double>(Budget::Clock::now() - Start).count();
  ThreadSpanStack &S = threadStack();
  // Pop our own id; an interleaving bug would desynchronize parenting,
  // so recover by unwinding to it.
  while (!S.Stack.empty()) {
    uint64_t Top = S.Stack.back();
    S.Stack.pop_back();
    if (Top == Rec.SpanId)
      break;
  }
  // Adopted contexts route through the query's TraceBuffer (tail-based
  // keep); everything else goes straight to the live sink.
  if (S.Adopted && S.Buffer) {
    S.Buffer->add(Rec);
    return;
  }
  if (std::shared_ptr<TraceSink> Out = Tracer::instance().sink())
    Out->onSpan(Rec);
}

void ScopedSpan::attr(std::string_view Key, std::string_view Value) {
  if (!Active)
    return;
  Rec.Attrs.emplace_back(std::string(Key), std::string(Value));
}

void ScopedSpan::attr(std::string_view Key, uint64_t Value) {
  if (!Active)
    return;
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, Value);
  Rec.Attrs.emplace_back(std::string(Key), Buf);
}

void ScopedSpan::attr(std::string_view Key, double Value) {
  if (!Active)
    return;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
  Rec.Attrs.emplace_back(std::string(Key), Buf);
}
