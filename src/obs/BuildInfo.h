//===- obs/BuildInfo.h - Compile-time build identity ------------*- C++ -*-===//
///
/// \file
/// The build identity baked into every binary at configure time: version,
/// git revision and the sanitizer list of the build tree. Exported as the
/// `dggt_build_info{version,git_sha,sanitizers} 1` gauge (the Prometheus
/// "info metric" idiom) plus `dggt_uptime_seconds`, so a dashboard can
/// tell which build and how fresh a process every scrape came from.
///
/// The values arrive as DGGT_VERSION / DGGT_GIT_SHA / DGGT_SANITIZERS
/// compile definitions on the dggt_obs target (see src/CMakeLists.txt);
/// a build outside CMake degrades to "unknown" rather than failing.
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_OBS_BUILDINFO_H
#define DGGT_OBS_BUILDINFO_H

#include <cstdint>
#include <string_view>

namespace dggt::obs {

/// Project version ("0.4.0") of this build.
std::string_view buildVersion();

/// Short git revision the build tree was configured from, or "unknown".
std::string_view buildGitSha();

/// The -fsanitize= list the tree was built with ("none" when clean).
std::string_view buildSanitizers();

/// Whole seconds since the process's observability layer first came up
/// (anchored at the first call, which configureFromSpec() makes during
/// startup; monotonic clock, so wall-clock steps cannot reverse it).
uint64_t uptimeSeconds();

} // namespace dggt::obs

#endif // DGGT_OBS_BUILDINFO_H
