//===- obs/QueryLog.cpp - Wide-event per-query log ------------------------===//

#include "obs/QueryLog.h"

#include "obs/Export.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace dggt;
using namespace dggt::obs;

namespace {

std::atomic<size_t> QueryTextCap{256};

void appendNumber(std::string &Out, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  Out += Buf;
}

/// Length of the UTF-8 sequence led by \p Lead, or 0 when \p Lead is not
/// a valid lead byte.
size_t utf8SeqLen(unsigned char Lead) {
  if (Lead < 0x80)
    return 1;
  if ((Lead & 0xE0) == 0xC0)
    return Lead >= 0xC2 ? 2 : 0; // C0/C1 are overlong encodings.
  if ((Lead & 0xF0) == 0xE0)
    return 3;
  if ((Lead & 0xF8) == 0xF0)
    return Lead <= 0xF4 ? 4 : 0;
  return 0;
}

} // namespace

std::string dggt::obs::sanitizeQueryText(std::string_view Text,
                                         size_t CapBytes) {
  static const char Replacement[] = "\xef\xbf\xbd"; // U+FFFD
  static const char Ellipsis[] = "\xe2\x80\xa6";    // U+2026
  std::string Out;
  Out.reserve(Text.size() < CapBytes ? Text.size() : CapBytes);
  bool Truncated = false;
  size_t I = 0;
  while (I < Text.size()) {
    unsigned char Lead = static_cast<unsigned char>(Text[I]);
    size_t Len = utf8SeqLen(Lead);
    bool Valid = Len > 0 && I + Len <= Text.size();
    if (Valid)
      for (size_t J = 1; J < Len; ++J)
        if ((static_cast<unsigned char>(Text[I + J]) & 0xC0) != 0x80) {
          Valid = false;
          break;
        }
    const char *Piece = Valid ? Text.data() + I : Replacement;
    size_t PieceLen = Valid ? Len : sizeof(Replacement) - 1;
    if (Out.size() + PieceLen > CapBytes) {
      Truncated = true;
      break;
    }
    Out.append(Piece, PieceLen);
    I += Valid ? Len : 1;
  }
  if (Truncated)
    Out += Ellipsis;
  return Out;
}

std::string dggt::obs::sanitizeQueryText(std::string_view Text) {
  return sanitizeQueryText(Text, queryTextCapBytes());
}

size_t dggt::obs::queryTextCapBytes() {
  return QueryTextCap.load(std::memory_order_relaxed);
}

void dggt::obs::setQueryTextCapBytes(size_t CapBytes) {
  QueryTextCap.store(CapBytes == 0 ? 1 : CapBytes,
                     std::memory_order_relaxed);
}

std::string dggt::obs::queryLogRecordJson(const QueryLogRecord &R) {
  std::string Out;
  Out.reserve(256);
  Out += "{\"trace_id\":\"";
  Out += escapeJson(R.TraceId);
  Out += "\",\"domain\":\"";
  Out += escapeJson(R.Domain);
  Out += "\",\"query\":\"";
  Out += escapeJson(R.Query);
  Out += "\",\"outcome\":\"";
  Out += escapeJson(R.Outcome);
  Out += "\",\"rung\":\"";
  Out += escapeJson(R.Rung);
  Out += "\",\"gate\":\"";
  Out += escapeJson(R.Gate);
  Out += "\",\"attempts\":";
  Out += std::to_string(R.Attempts);
  Out += ",\"retries\":";
  Out += std::to_string(R.Retries);
  Out += ",\"hedged\":";
  Out += R.Hedged ? "true" : "false";
  Out += ",\"hedge_won\":";
  Out += R.HedgeWon ? "true" : "false";
  Out += ",\"shards\":[";
  for (size_t I = 0; I < R.Shards.size(); ++I) {
    if (I)
      Out += ',';
    Out += "{\"shard\":\"";
    Out += escapeJson(R.Shards[I].Shard);
    Out += "\",\"outcome\":\"";
    Out += escapeJson(R.Shards[I].Outcome);
    Out += "\",\"hedge\":";
    Out += R.Shards[I].Hedge ? "true" : "false";
    Out += '}';
  }
  Out += "],\"queue_wait_ms\":";
  appendNumber(Out, R.QueueWaitMs);
  Out += ",\"stage_ms\":{";
  for (size_t I = 0; I < 4; ++I) {
    if (I)
      Out += ',';
    Out += '"';
    Out += QueryStageNames[I];
    Out += "\":";
    appendNumber(Out, R.StageMs[I]);
  }
  Out += "},\"total_ms\":";
  appendNumber(Out, R.TotalMs);
  Out += ",\"path_cache_hit\":";
  Out += R.PathCacheHit ? "true" : "false";
  Out += ",\"word_cache_hit\":";
  Out += R.WordCacheHit ? "true" : "false";
  Out += ",\"cost\":";
  Out += costCountersJson(R.Cost);
  Out += ",\"budget_ms\":";
  Out += std::to_string(R.BudgetMs);
  Out += ",\"trace_kept\":";
  Out += R.TraceKept ? "true" : "false";
  Out += ",\"ts\":";
  appendNumber(Out, R.WallSeconds);
  Out += '}';
  return Out;
}

QueryLog &QueryLog::instance() {
  // Intentionally leaked, like the metrics registry: records written
  // from static destructors must find a live log.
  static QueryLog *L = new QueryLog();
  return *L;
}

void QueryLog::configureRing(size_t Capacity) {
  std::lock_guard<std::mutex> Lk(M);
  if (Capacity == 0)
    Capacity = 1;
  // Re-linearize oldest-first, then keep the newest Capacity records.
  std::vector<std::shared_ptr<const QueryLogRecord>> Ordered;
  Ordered.reserve(Ring.size());
  if (!Wrapped) {
    Ordered = Ring;
  } else {
    for (size_t I = 0; I < Ring.size(); ++I)
      Ordered.push_back(Ring[(Next + I) % Ring.size()]);
  }
  if (Ordered.size() > Capacity)
    Ordered.erase(Ordered.begin(),
                  Ordered.begin() + (Ordered.size() - Capacity));
  Ring = std::move(Ordered);
  Cap = Capacity;
  Next = Ring.size() % Cap;
  Wrapped = Ring.size() == Cap;
}

size_t QueryLog::ringCapacity() const {
  std::lock_guard<std::mutex> Lk(M);
  return Cap;
}

bool QueryLog::setJsonlPath(const std::string &Path) {
  std::lock_guard<std::mutex> Lk(M);
  if (Path.empty()) {
    OwnedOut.reset();
    Out = nullptr;
    return true;
  }
  if (Path == "stderr") {
    OwnedOut.reset();
    Out = &std::cerr;
    return true;
  }
  if (Path == "stdout") {
    OwnedOut.reset();
    Out = &std::cout;
    return true;
  }
  auto File = std::make_unique<std::ofstream>(Path, std::ios::trunc);
  if (!*File)
    return false;
  OwnedOut = std::move(File);
  Out = OwnedOut.get();
  return true;
}

void QueryLog::record(QueryLogRecord R) {
  R.WallSeconds = std::chrono::duration<double>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
  auto Rec = std::make_shared<const QueryLogRecord>(std::move(R));
  std::lock_guard<std::mutex> Lk(M);
  ++Total;
  if (Ring.size() < Cap) {
    Ring.push_back(Rec);
    Next = Ring.size() % Cap;
  } else {
    Ring[Next] = Rec;
    Next = (Next + 1) % Cap;
    Wrapped = true;
    ++Overwritten;
  }
  if (Out) {
    *Out << queryLogRecordJson(*Rec) << '\n';
    Out->flush();
  }
}

std::vector<QueryLogRecord> QueryLog::snapshot() const {
  std::lock_guard<std::mutex> Lk(M);
  std::vector<QueryLogRecord> Snap;
  Snap.reserve(Ring.size());
  if (!Wrapped) {
    for (const auto &Rec : Ring)
      Snap.push_back(*Rec);
    return Snap;
  }
  for (size_t I = 0; I < Ring.size(); ++I)
    Snap.push_back(*Ring[(Next + I) % Ring.size()]);
  return Snap;
}

std::shared_ptr<const QueryLogRecord>
QueryLog::findByTraceId(std::string_view TraceId) const {
  std::lock_guard<std::mutex> Lk(M);
  // Newest-first so a reused ring slot resolves to the live record.
  for (size_t I = Ring.size(); I > 0; --I) {
    const auto &Rec =
        Wrapped ? Ring[(Next + I - 1) % Ring.size()] : Ring[I - 1];
    if (Rec && Rec->TraceId == TraceId)
      return Rec;
  }
  return nullptr;
}

uint64_t QueryLog::total() const {
  std::lock_guard<std::mutex> Lk(M);
  return Total;
}

uint64_t QueryLog::overwritten() const {
  std::lock_guard<std::mutex> Lk(M);
  return Overwritten;
}

void QueryLog::resetForTest() {
  std::lock_guard<std::mutex> Lk(M);
  Ring.clear();
  Next = 0;
  Wrapped = false;
  Total = 0;
  Overwritten = 0;
  OwnedOut.reset();
  Out = nullptr;
}
