//===- support/Statistics.cpp - Summary statistics ------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace dggt;

std::vector<double> SampleStats::sorted() const {
  std::vector<double> S = Values;
  std::sort(S.begin(), S.end());
  return S;
}

double SampleStats::max() const {
  assert(!Values.empty() && "max() of empty sample");
  return *std::max_element(Values.begin(), Values.end());
}

double SampleStats::min() const {
  assert(!Values.empty() && "min() of empty sample");
  return *std::min_element(Values.begin(), Values.end());
}

double SampleStats::sum() const {
  return std::accumulate(Values.begin(), Values.end(), 0.0);
}

double SampleStats::mean() const {
  assert(!Values.empty() && "mean() of empty sample");
  return sum() / static_cast<double>(Values.size());
}

double SampleStats::median() const { return percentile(50.0); }

double SampleStats::percentile(double P) const {
  assert(!Values.empty() && "percentile() of empty sample");
  assert(P >= 0.0 && P <= 100.0 && "percentile out of range");
  std::vector<double> S = sorted();
  if (S.size() == 1)
    return S.front();
  double Rank = P / 100.0 * static_cast<double>(S.size() - 1);
  size_t Lo = static_cast<size_t>(std::floor(Rank));
  size_t Hi = static_cast<size_t>(std::ceil(Rank));
  double Frac = Rank - static_cast<double>(Lo);
  return S[Lo] + (S[Hi] - S[Lo]) * Frac;
}
