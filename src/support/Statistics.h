//===- support/Statistics.h - Summary statistics ----------------*- C++ -*-===//
///
/// \file
/// Max / mean / median summaries used for the speedup columns of Table II
/// and percentile buckets for Figure 7.
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_SUPPORT_STATISTICS_H
#define DGGT_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace dggt {

/// Accumulates a sample of doubles and answers summary queries.
class SampleStats {
public:
  void add(double Value) { Values.push_back(Value); }

  bool empty() const { return Values.empty(); }
  size_t size() const { return Values.size(); }

  double max() const;
  double min() const;
  double mean() const;

  /// Median (average of the two middle elements for even sizes).
  double median() const;

  /// P-th percentile with linear interpolation, P in [0, 100].
  double percentile(double P) const;

  double sum() const;

  const std::vector<double> &values() const { return Values; }

private:
  /// Returns a sorted copy of the sample.
  std::vector<double> sorted() const;

  std::vector<double> Values;
};

} // namespace dggt

#endif // DGGT_SUPPORT_STATISTICS_H
