//===- support/StringUtils.h - Small string helpers ------------*- C++ -*-===//
//
// Part of the DGGT reproduction of "Enabling Near Real-Time NLU-Driven
// Natural Language Programming through Dynamic Grammar Graph-Based
// Translation" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared by the tokenizer, the BNF parser and the
/// WordToAPI matcher: case mapping, splitting (including camelCase
/// splitting for API names), joining and trimming.
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_SUPPORT_STRINGUTILS_H
#define DGGT_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dggt {

/// Returns \p S converted to lower case (ASCII only).
std::string toLower(std::string_view S);

/// Returns \p S converted to upper case (ASCII only).
std::string toUpper(std::string_view S);

/// Returns true if \p S consists only of upper-case letters, digits and
/// underscores (the spelling convention for API terminals in our BNF).
bool isAllCaps(std::string_view S);

/// Splits \p S on any character in \p Separators, dropping empty pieces.
std::vector<std::string> split(std::string_view S,
                               std::string_view Separators);

/// Splits an API identifier into lower-cased word tokens.
///
/// Handles camelCase ("hasOperatorName" -> has, operator, name),
/// ALLCAPS ("STARTFROM" -> startfrom), and snake_case.
std::vector<std::string> splitIdentifier(std::string_view Name);

/// Joins \p Parts with \p Separator.
std::string join(const std::vector<std::string> &Parts,
                 std::string_view Separator);

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view S);

/// Returns true if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// Returns true if \p S ends with \p Suffix.
bool endsWith(std::string_view S, std::string_view Suffix);

/// Edit (Levenshtein) distance between two strings; used as a last-resort
/// tie-breaker in word/API matching.
unsigned editDistance(std::string_view A, std::string_view B);

/// Strictly parses a base-10 unsigned integer: the whole string must be
/// digits (no sign, whitespace or suffix) and the value must fit in
/// uint64_t. Used to validate environment knobs (DGGT_TIMEOUT_MS,
/// DGGT_FAULTS) instead of strtoull's permissive prefix parsing.
std::optional<uint64_t> parseUnsigned(std::string_view S);

} // namespace dggt

#endif // DGGT_SUPPORT_STRINGUTILS_H
