//===- support/Table.cpp - Fixed-width text tables ------------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace dggt;

void TextTable::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Rows.push_back({std::move(Cells), /*Separator=*/false});
}

void TextTable::addSeparator() { Rows.push_back({{}, /*Separator=*/true}); }

std::string TextTable::render() const {
  // Compute the width of every column across header and rows.
  std::vector<size_t> Widths;
  auto Grow = [&](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (size_t I = 0; I < Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], Cells[I].size());
  };
  Grow(Header);
  for (const Row &R : Rows)
    Grow(R.Cells);

  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;

  auto RenderRow = [&](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t I = 0; I < Cells.size(); ++I) {
      Line += Cells[I];
      if (I + 1 < Cells.size())
        Line += std::string(Widths[I] - Cells[I].size() + 2, ' ');
    }
    Line += '\n';
    return Line;
  };

  std::string Out;
  if (!Header.empty()) {
    Out += RenderRow(Header);
    Out += std::string(Total, '-') + "\n";
  }
  for (const Row &R : Rows) {
    if (R.Separator)
      Out += std::string(Total, '-') + "\n";
    else
      Out += RenderRow(R.Cells);
  }
  return Out;
}

std::string dggt::formatDouble(double Value, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

std::string dggt::formatCount(double Value) {
  if (Value < 1e6) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.0f", Value);
    return Buf;
  }
  int Exp = static_cast<int>(std::floor(std::log10(Value)));
  double Mant = Value / std::pow(10.0, Exp);
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.1fe%d", Mant, Exp);
  return Buf;
}
