//===- support/Budget.h - Cooperative deadline ------------------*- C++ -*-===//
///
/// \file
/// A wall-clock deadline checked cooperatively inside synthesis hot loops.
///
/// The paper runs every query under a 20-second interactive timeout
/// (Section VII-B1); a query that misses the deadline is counted as an
/// error. Both the HISyn baseline and DGGT poll a Budget so the
/// exponential baseline can be cut off without threads or signals.
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_SUPPORT_BUDGET_H
#define DGGT_SUPPORT_BUDGET_H

#include "support/Clock.h"

#include <chrono>
#include <cstdint>

namespace dggt {

/// A cooperative wall-clock budget.
///
/// `expired()` amortizes the clock read: it only consults the clock once
/// every `CheckStride` calls, so it is cheap enough for inner loops.
class Budget {
public:
  using Clock = std::chrono::steady_clock;

  /// Creates an unlimited budget (never expires).
  Budget() = default;

  /// Creates a budget that expires \p Ms milliseconds from now. A value of
  /// zero means unlimited. A non-null \p Clk substitutes the time source
  /// (tests; see support/Clock.h) and must outlive every copy of the
  /// budget; null means the real steady clock.
  explicit Budget(uint64_t Ms, const ClockSource *Clk = nullptr) : Clk(Clk) {
    if (Ms != 0) {
      Deadline = clockNow(Clk) + std::chrono::milliseconds(Ms);
      Limited = true;
    }
  }

  /// Creates a budget expiring at the absolute instant \p At. Lets a
  /// scheduler fix a query's deadline at *submission* time and hand the
  /// same deadline to whichever worker eventually runs it: time spent
  /// queued counts against the budget (the async service's cancellation
  /// of queued-past-deadline work relies on this).
  static Budget until(Clock::time_point At, const ClockSource *Clk = nullptr) {
    Budget B;
    B.Limited = true;
    B.Deadline = At;
    B.Clk = Clk;
    return B;
  }

  /// The deadline of a limited budget (meaningless when !isLimited()).
  Clock::time_point deadline() const { return Deadline; }

  /// Returns true once the deadline has passed. Sticky: once expired,
  /// always expired.
  ///
  /// The clock is consulted on the very first call — so a budget handed
  /// to a stage past its deadline is seen as expired immediately instead
  /// of after a full stride of work — and every CheckStride calls after.
  bool expired() {
    if (!Limited)
      return false;
    if (Expired)
      return true;
    if (Calls++ % CheckStride != 0)
      return false;
    Expired = clockNow(Clk) >= Deadline;
    return Expired;
  }

  /// Forces the expired state (used by tests, by fault injection, and by
  /// nested stages that already observed expiry).
  void cancel() {
    Limited = true;
    Expired = true;
  }

  /// True if this budget can ever expire.
  bool isLimited() const { return Limited; }

  /// Sentinel remainingMs() value of an unlimited budget.
  static constexpr uint64_t UnlimitedMs = ~0ull;

  /// Milliseconds left before the deadline: 0 once expired (or
  /// cancelled), UnlimitedMs for an unlimited budget. Reads the clock;
  /// meant for scheduling decisions, not inner loops.
  uint64_t remainingMs() const {
    if (!Limited)
      return UnlimitedMs;
    if (Expired)
      return 0;
    Clock::time_point Now = clockNow(Clk);
    if (Now >= Deadline)
      return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(Deadline - Now)
            .count());
  }

  /// Splits off a child budget that shares this deadline honestly: it
  /// expires \p Ms milliseconds from now or at the parent's deadline,
  /// whichever comes first. \p Ms of zero grants the whole remainder.
  /// Cancelling the child never touches the parent; a child of an
  /// already-expired parent starts expired.
  Budget child(uint64_t Ms) const {
    if (!Limited)
      return Budget(Ms, Clk);
    Budget C;
    C.Limited = true;
    C.Deadline = Deadline;
    C.Clk = Clk;
    if (Ms != 0) {
      Clock::time_point D = clockNow(Clk) + std::chrono::milliseconds(Ms);
      if (D < C.Deadline)
        C.Deadline = D;
    }
    C.Expired = Expired;
    return C;
  }

private:
  static constexpr uint64_t CheckStride = 256;

  Clock::time_point Deadline;
  const ClockSource *Clk = nullptr; ///< Null = the real steady clock.
  uint64_t Calls = 0;
  bool Limited = false;
  bool Expired = false;
};

/// Simple wall-clock stopwatch used by the evaluation harness.
class WallTimer {
public:
  WallTimer() : Start(Budget::Clock::now()) {}

  /// Elapsed time in seconds since construction (or the last restart).
  double seconds() const {
    return std::chrono::duration<double>(Budget::Clock::now() - Start).count();
  }

  /// Restarts the stopwatch.
  void restart() { Start = Budget::Clock::now(); }

private:
  Budget::Clock::time_point Start;
};

} // namespace dggt

#endif // DGGT_SUPPORT_BUDGET_H
