//===- support/Table.h - Fixed-width text tables ----------------*- C++ -*-===//
///
/// \file
/// A minimal fixed-width table renderer. The bench binaries use it to
/// print rows in the same layout as the paper's tables (Table I-III) and
/// figure series (Figure 7/8).
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_SUPPORT_TABLE_H
#define DGGT_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace dggt {

/// Accumulates rows of cells and renders them with aligned columns.
class TextTable {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row. Rows may have fewer cells than the header.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders the table with two-space column gaps; header is followed by a
  /// dashed rule.
  std::string render() const;

private:
  struct Row {
    std::vector<std::string> Cells;
    bool Separator = false;
  };

  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

/// Formats \p Value with \p Digits digits after the decimal point.
std::string formatDouble(double Value, int Digits);

/// Formats \p Value in engineering style: plain below 10^6 ("3744"),
/// otherwise scientific with one decimal ("3.8e6"), matching Table III.
std::string formatCount(double Value);

} // namespace dggt

#endif // DGGT_SUPPORT_TABLE_H
