//===- support/FaultInjection.cpp - Deterministic fault points ------------===//

#include "support/FaultInjection.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

using namespace dggt;

std::atomic<unsigned> FaultInjector::ArmedPoints{0};

FaultInjector &FaultInjector::instance() {
  // Intentionally leaked: the injector's counts are pull-collected by the
  // observability exit flush, which may run after ordinary function-local
  // statics have been destroyed.
  static FaultInjector *I = new FaultInjector();
  return *I;
}

FaultInjector::Point &FaultInjector::pointFor(std::string_view Name) {
  auto It = Points.find(std::string(Name));
  if (It == Points.end())
    It = Points.emplace(std::string(Name), Point{}).first;
  return It->second;
}

void FaultInjector::armNth(std::string_view Name, uint64_t Nth,
                           bool Repeating) {
  std::lock_guard<std::mutex> L(M);
  Point &P = pointFor(Name);
  if (P.Kind == Point::Trigger::Disarmed)
    ArmedPoints.fetch_add(1, std::memory_order_relaxed);
  P.Kind = Point::Trigger::Nth;
  P.Nth = Nth == 0 ? 1 : Nth;
  P.Repeating = Repeating;
  P.Hits = 0;
}

void FaultInjector::armProbability(std::string_view Name, double Prob,
                                   uint64_t Seed) {
  std::lock_guard<std::mutex> L(M);
  Point &P = pointFor(Name);
  if (P.Kind == Point::Trigger::Disarmed)
    ArmedPoints.fetch_add(1, std::memory_order_relaxed);
  P.Kind = Point::Trigger::Probability;
  P.P = Prob;
  P.Rng.seed(Seed);
  P.Hits = 0;
}

void FaultInjector::disarm(std::string_view Name) {
  std::lock_guard<std::mutex> L(M);
  auto It = Points.find(std::string(Name));
  if (It == Points.end() || It->second.Kind == Point::Trigger::Disarmed)
    return;
  It->second.Kind = Point::Trigger::Disarmed;
  ArmedPoints.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> L(M);
  for (auto &[Name, P] : Points)
    if (P.Kind != Point::Trigger::Disarmed)
      ArmedPoints.fetch_sub(1, std::memory_order_relaxed);
  Points.clear();
}

bool FaultInjector::fires(std::string_view Name) {
  std::lock_guard<std::mutex> L(M);
  Point &P = pointFor(Name);
  ++P.TotalHits;
  if (P.Kind == Point::Trigger::Disarmed)
    return false;
  ++P.Hits;
  bool Fire = false;
  switch (P.Kind) {
  case Point::Trigger::Disarmed:
    break;
  case Point::Trigger::Nth:
    Fire = P.Repeating ? (P.Hits % P.Nth == 0) : (P.Hits == P.Nth);
    break;
  case Point::Trigger::Probability: {
    std::uniform_real_distribution<double> D(0.0, 1.0);
    Fire = D(P.Rng) < P.P;
    break;
  }
  }
  if (Fire)
    ++P.Fired;
  return Fire;
}

uint64_t FaultInjector::hits(std::string_view Name) const {
  std::lock_guard<std::mutex> L(M);
  auto It = Points.find(std::string(Name));
  return It == Points.end() ? 0 : It->second.TotalHits;
}

uint64_t FaultInjector::fired(std::string_view Name) const {
  std::lock_guard<std::mutex> L(M);
  auto It = Points.find(std::string(Name));
  return It == Points.end() ? 0 : It->second.Fired;
}

std::vector<FaultPointCounts> FaultInjector::snapshotCounts() const {
  std::vector<FaultPointCounts> Out;
  {
    std::lock_guard<std::mutex> L(M);
    Out.reserve(Points.size());
    for (const auto &[Name, P] : Points)
      Out.push_back({Name, P.TotalHits, P.Fired});
  }
  std::sort(Out.begin(), Out.end(),
            [](const FaultPointCounts &A, const FaultPointCounts &B) {
              return A.Point < B.Point;
            });
  return Out;
}

namespace {

/// Strict probability parse: the whole string must be a double in [0, 1].
bool parseProbability(std::string_view S, double &Out) {
  if (S.empty())
    return false;
  std::string Buf(S);
  char *End = nullptr;
  double V = std::strtod(Buf.c_str(), &End);
  if (End != Buf.c_str() + Buf.size())
    return false;
  if (!(V >= 0.0 && V <= 1.0))
    return false;
  Out = V;
  return true;
}

} // namespace

bool FaultInjector::armFromSpec(std::string_view Spec, std::string &Error) {
  struct Entry {
    std::string Name;
    Point::Trigger Kind;
    uint64_t Nth = 1;
    bool Repeating = false;
    double P = 0.0;
    uint64_t Seed = 1;
  };
  std::vector<Entry> Parsed;

  for (const std::string &Item : split(Spec, ",")) {
    std::string_view E = trim(Item);
    if (E.empty())
      continue;
    size_t Eq = E.find('=');
    if (Eq == std::string_view::npos) {
      Error = "entry '" + std::string(E) + "' is missing '='";
      return false;
    }
    Entry Out;
    Out.Name = std::string(trim(E.substr(0, Eq)));
    std::string_view Trigger = trim(E.substr(Eq + 1));
    if (Out.Name.empty() || Trigger.empty()) {
      Error = "entry '" + std::string(E) + "' has an empty point or trigger";
      return false;
    }
    if (Trigger == "always") {
      Out.Kind = Point::Trigger::Nth;
      Out.Nth = 1;
      Out.Repeating = true;
    } else if (startsWith(Trigger, "nth:") || startsWith(Trigger, "every:")) {
      Out.Kind = Point::Trigger::Nth;
      Out.Repeating = startsWith(Trigger, "every:");
      std::string_view Num = Trigger.substr(Trigger.find(':') + 1);
      std::optional<uint64_t> N = parseUnsigned(Num);
      if (!N || *N == 0) {
        Error = "bad count '" + std::string(Num) + "' in '" + std::string(E) +
                "' (want a positive integer)";
        return false;
      }
      Out.Nth = *N;
    } else if (startsWith(Trigger, "prob:")) {
      Out.Kind = Point::Trigger::Probability;
      std::string_view Rest = Trigger.substr(5);
      std::string_view ProbStr = Rest;
      if (size_t At = Rest.find('@'); At != std::string_view::npos) {
        ProbStr = Rest.substr(0, At);
        std::optional<uint64_t> Seed = parseUnsigned(Rest.substr(At + 1));
        if (!Seed) {
          Error = "bad seed in '" + std::string(E) + "'";
          return false;
        }
        Out.Seed = *Seed;
      }
      if (!parseProbability(ProbStr, Out.P)) {
        Error = "bad probability '" + std::string(ProbStr) + "' in '" +
                std::string(E) + "' (want a value in [0,1])";
        return false;
      }
    } else {
      Error = "unknown trigger '" + std::string(Trigger) + "' in '" +
              std::string(E) + "'";
      return false;
    }
    Parsed.push_back(std::move(Out));
  }

  for (const Entry &E : Parsed) {
    if (E.Kind == Point::Trigger::Probability)
      armProbability(E.Name, E.P, E.Seed);
    else
      armNth(E.Name, E.Nth, E.Repeating);
  }
  return true;
}
