//===- support/Budget.cpp - Cooperative deadline --------------------------===//

#include "support/Budget.h"

// Budget and WallTimer are header-only; this file anchors the translation
// unit for the support library.
