//===- support/Clock.h - Injectable monotonic time source -------*- C++ -*-===//
///
/// \file
/// A tiny seam between "what time is it" and everything that schedules
/// on time: budgets, queue-wait accounting, and the adaptive load
/// controller's tick cadence. Production code reads the real
/// std::chrono::steady_clock through steadyClock(); tests inject a
/// VirtualClock and advance it by hand, so every deadline and every
/// controller decision is reproducible without sleeps or wall-time
/// flakiness.
///
/// The interface is deliberately minimal — one now() — because the
/// consumers only ever *compare* instants and *add* durations. A null
/// ClockSource pointer everywhere means "the real steady clock", so the
/// seam costs production code one branch and no allocation.
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_SUPPORT_CLOCK_H
#define DGGT_SUPPORT_CLOCK_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace dggt {

/// Monotonic time source. Implementations must be thread-safe: now() is
/// called concurrently from workers, submitters and controller ticks.
class ClockSource {
public:
  using TimePoint = std::chrono::steady_clock::time_point;
  using Duration = std::chrono::steady_clock::duration;

  virtual ~ClockSource();
  virtual TimePoint now() const = 0;
};

/// The real steady clock; stateless, so one shared instance suffices.
class SteadyClockSource final : public ClockSource {
public:
  TimePoint now() const override { return std::chrono::steady_clock::now(); }
};

/// The process-wide real clock instance (what a null ClockSource* means).
const ClockSource &steadyClock();

/// Reads \p Clk, or the real steady clock when \p Clk is null. The
/// convention every clock-threaded consumer follows.
inline ClockSource::TimePoint clockNow(const ClockSource *Clk) {
  return Clk ? Clk->now() : std::chrono::steady_clock::now();
}

/// A manually advanced clock for deterministic tests: time moves only
/// when the test says so. Starts at an arbitrary nonzero epoch so
/// subtracting a default-constructed time_point never underflows.
class VirtualClock final : public ClockSource {
public:
  VirtualClock() : Ticks(startEpoch().time_since_epoch().count()) {}

  TimePoint now() const override {
    return TimePoint(Duration(Ticks.load(std::memory_order_acquire)));
  }

  /// Moves time forward; concurrent readers see the jump atomically.
  void advance(Duration D) {
    Ticks.fetch_add(D.count(), std::memory_order_acq_rel);
  }
  void advanceMs(uint64_t Ms) {
    advance(std::chrono::duration_cast<Duration>(
        std::chrono::milliseconds(Ms)));
  }

private:
  static TimePoint startEpoch() {
    return TimePoint(std::chrono::duration_cast<Duration>(
        std::chrono::hours(1)));
  }

  std::atomic<Duration::rep> Ticks;
};

} // namespace dggt

#endif // DGGT_SUPPORT_CLOCK_H
