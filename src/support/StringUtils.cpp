//===- support/StringUtils.cpp - Small string helpers --------------------===//

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cctype>

using namespace dggt;

std::string dggt::toLower(std::string_view S) {
  std::string Out(S);
  std::transform(Out.begin(), Out.end(), Out.begin(), [](unsigned char C) {
    return static_cast<char>(std::tolower(C));
  });
  return Out;
}

std::string dggt::toUpper(std::string_view S) {
  std::string Out(S);
  std::transform(Out.begin(), Out.end(), Out.begin(), [](unsigned char C) {
    return static_cast<char>(std::toupper(C));
  });
  return Out;
}

bool dggt::isAllCaps(std::string_view S) {
  if (S.empty())
    return false;
  bool SawUpper = false;
  for (unsigned char C : S) {
    if (std::isupper(C)) {
      SawUpper = true;
      continue;
    }
    if (std::isdigit(C) || C == '_')
      continue;
    return false;
  }
  return SawUpper;
}

std::vector<std::string> dggt::split(std::string_view S,
                                     std::string_view Separators) {
  std::vector<std::string> Parts;
  size_t Begin = 0;
  while (Begin <= S.size()) {
    size_t End = S.find_first_of(Separators, Begin);
    if (End == std::string_view::npos)
      End = S.size();
    if (End > Begin)
      Parts.emplace_back(S.substr(Begin, End - Begin));
    Begin = End + 1;
  }
  return Parts;
}

std::vector<std::string> dggt::splitIdentifier(std::string_view Name) {
  std::vector<std::string> Words;
  std::string Current;
  auto Flush = [&] {
    if (!Current.empty()) {
      Words.push_back(toLower(Current));
      Current.clear();
    }
  };
  for (size_t I = 0; I < Name.size(); ++I) {
    unsigned char C = Name[I];
    if (C == '_' || C == '-' || C == ' ') {
      Flush();
      continue;
    }
    // A lower->upper transition starts a new camelCase word. A run of
    // capitals stays one word (ALLCAPS identifiers, acronyms like "AST"),
    // except that the last capital of a run followed by a lower-case letter
    // starts the next word ("ASTNode" -> "ast", "node").
    if (std::isupper(C) && !Current.empty()) {
      unsigned char Prev = Name[I - 1];
      bool NextIsLower = I + 1 < Name.size() &&
                         std::islower(static_cast<unsigned char>(Name[I + 1]));
      if (std::islower(Prev) || (std::isupper(Prev) && NextIsLower))
        Flush();
    }
    Current.push_back(static_cast<char>(C));
  }
  Flush();
  return Words;
}

std::string dggt::join(const std::vector<std::string> &Parts,
                       std::string_view Separator) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Separator;
    Out += Parts[I];
  }
  return Out;
}

std::string_view dggt::trim(std::string_view S) {
  size_t Begin = 0;
  while (Begin < S.size() && std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  size_t End = S.size();
  while (End > Begin && std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

bool dggt::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

bool dggt::endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.substr(S.size() - Suffix.size()) == Suffix;
}

unsigned dggt::editDistance(std::string_view A, std::string_view B) {
  // Classic two-row dynamic program; strings here are short (API names).
  std::vector<unsigned> Prev(B.size() + 1), Cur(B.size() + 1);
  for (size_t J = 0; J <= B.size(); ++J)
    Prev[J] = static_cast<unsigned>(J);
  for (size_t I = 1; I <= A.size(); ++I) {
    Cur[0] = static_cast<unsigned>(I);
    for (size_t J = 1; J <= B.size(); ++J) {
      unsigned Sub = Prev[J - 1] + (A[I - 1] == B[J - 1] ? 0 : 1);
      Cur[J] = std::min({Prev[J] + 1, Cur[J - 1] + 1, Sub});
    }
    std::swap(Prev, Cur);
  }
  return Prev[B.size()];
}

std::optional<uint64_t> dggt::parseUnsigned(std::string_view S) {
  if (S.empty())
    return std::nullopt;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return std::nullopt;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (V > (UINT64_MAX - Digit) / 10)
      return std::nullopt; // overflow
    V = V * 10 + Digit;
  }
  return V;
}
