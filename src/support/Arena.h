//===- support/Arena.h - Per-query bump allocator ----------------*- C++ -*-===//
///
/// \file
/// A monotonic bump allocator for per-query scratch: allocation is a
/// pointer bump inside the current chunk, deallocation is a no-op, and
/// reset() recycles every chunk without returning memory to the global
/// heap — so a warm arena serves an entire steady-state query with zero
/// malloc/free traffic. Chunks are heap blocks with stable addresses, so
/// an Arena object may itself be moved without invalidating outstanding
/// allocations.
///
/// The arena is single-threaded by design (one per query / per worker
/// thread); cross-thread use is a bug. `queryArena()` hands out the
/// calling thread's per-query arena, reset by the pipeline at each query
/// boundary (see synth/Pipeline.cpp and DESIGN.md §15 for the lifetime
/// rules — notably: nothing that outlives the query, such as a PathCache
/// entry or an exported DynamicGrammarGraph, may point into it).
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_SUPPORT_ARENA_H
#define DGGT_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace dggt {

/// Chunked bump allocator. Not thread-safe.
class Arena {
public:
  /// \p FirstChunkBytes sizes the first chunk; later chunks double up to
  /// MaxChunkBytes (oversized requests get a dedicated chunk).
  explicit Arena(size_t FirstChunkBytes = 16 * 1024);
  ~Arena();

  Arena(Arena &&) = default;
  Arena &operator=(Arena &&) = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Raw allocation, aligned to \p Align (power of two, <= alignof(max_align_t)
  /// honored via over-allocation for larger requests).
  void *allocate(size_t Bytes, size_t Align = alignof(std::max_align_t));

  /// Typed array allocation (uninitialized storage).
  template <typename T> T *allocateArray(size_t N) {
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Recycles every chunk: subsequent allocations reuse the retained
  /// blocks front to back. Bumps the generation so holders of arena
  /// pointers can detect staleness; records the high-water mark.
  void reset();

  /// Bytes handed out since the last reset().
  size_t bytesUsed() const { return Used; }
  /// Largest bytesUsed() ever observed at reset() or now.
  size_t highWater() const { return Used > Peak ? Used : Peak; }
  /// Bytes of chunk capacity currently retained.
  size_t bytesReserved() const { return Reserved; }
  /// Incremented by every reset(); lets cached carve-outs revalidate.
  uint64_t generation() const { return Generation; }

  /// Process-wide maximum of any arena's highWater(), maintained at
  /// reset() (and destruction). The throughput bench reports this as the
  /// per-query scratch footprint.
  static uint64_t processHighWater();

private:
  struct Chunk {
    std::unique_ptr<char[]> Mem;
    size_t Size = 0;
  };

  void publishPeak();

  static constexpr size_t MaxChunkBytes = 1 << 20;

  std::vector<Chunk> Chunks;
  size_t Cur = 0;      ///< Index of the chunk being bumped.
  size_t Offset = 0;   ///< Bump offset inside Chunks[Cur].
  size_t Used = 0;     ///< Total bytes handed out since reset().
  size_t Peak = 0;     ///< High-water of Used across resets.
  size_t Reserved = 0; ///< Sum of chunk sizes.
  size_t NextChunkBytes;
  uint64_t Generation = 1;
};

/// The calling thread's per-query scratch arena. Reset at each query
/// boundary by SynthesisFrontEnd::prepare/prepareFromGraph; everything
/// carved from it dies (logically) at the next query on this thread.
Arena &queryArena();

/// Registers an intentionally-leaked per-thread singleton with
/// LeakSanitizer (no-op outside ASan builds). LSan treats registered
/// objects as reachability roots, so interior allocations (arena
/// chunks, grown scratch arrays) are suppressed transitively; without
/// this, every exited worker thread's workspace is reported as a leak.
void lsanIgnoreIntentionalLeak(const void *P);

} // namespace dggt

#endif // DGGT_SUPPORT_ARENA_H
