//===- support/FaultInjection.h - Deterministic fault points -----*- C++ -*-===//
///
/// \file
/// Named fault points threaded into the synthesis hot stages so tests can
/// force mid-flight budget expiry, search truncation, and parse failures
/// deterministically — without timing races or hostile inputs crafted per
/// test. A point is a no-op (one relaxed atomic load) until a test or the
/// DGGT_FAULTS environment spec arms it with a trigger:
///
///   - fire on the Nth hit (optionally on every Nth hit thereafter), or
///   - fire with a seeded probability per hit (reproducible sequences).
///
/// The call-site contract is defined where the point is consulted: the
/// BNF parser turns a firing into a parse error, the path search into a
/// truncated result, the synthesizers into a cancelled budget (observed
/// as a Timeout status). See DESIGN.md "Failure model and degradation
/// ladder" for the full point taxonomy.
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_SUPPORT_FAULTINJECTION_H
#define DGGT_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dggt {

namespace faults {
/// Canonical fault-point names. Arbitrary names are accepted by the
/// injector; these are the points the library consults.
inline constexpr std::string_view BnfParse = "bnf.parse";
inline constexpr std::string_view PathSearchVisit = "pathsearch.visit";
inline constexpr std::string_view EdgeToPathEdge = "edgetopath.edge";
inline constexpr std::string_view DggtMerge = "dggt.merge";
inline constexpr std::string_view HisynEnumerate = "hisyn.enumerate";
inline constexpr std::string_view ServiceTransient = "service.transient";
/// Data-plane points (see src/router/ and obs/HttpEndpoint): a firing
/// connect point fails an upstream call before submission, a read-stall
/// point turns a completed call into a timeout, and a reply point drops
/// the HTTP connection instead of writing the deferred response. Each is
/// also consulted with a ".<shard-name>" suffix (the injector accepts
/// arbitrary names), so DGGT_FAULTS can target one shard of a set:
/// `router.connect.shard-1=always`.
inline constexpr std::string_view RouterConnect = "router.connect";
inline constexpr std::string_view RouterReadStall = "router.read_stall";
inline constexpr std::string_view DataplaneReply = "dataplane.reply";
} // namespace faults

/// Hit/fired counts of one fault point (see FaultInjector::
/// snapshotCounts); the observability exporter surfaces these as
/// dggt_fault_point_{hits,fired}_total{point=...}.
struct FaultPointCounts {
  std::string Point;
  uint64_t Hits = 0;
  uint64_t Fired = 0;
};

/// Process-wide registry of armed fault points. Thread-safe; the
/// unarmed fast path is lock-free.
class FaultInjector {
public:
  static FaultInjector &instance();

  /// Arms \p Point to fire on its \p Nth hit from now (1 = next hit).
  /// With \p Repeating, it fires on every Nth hit instead of once.
  void armNth(std::string_view Point, uint64_t Nth, bool Repeating = false);

  /// Arms \p Point to fire each hit with probability \p P, drawn from a
  /// generator seeded with \p Seed (same seed => same firing sequence).
  void armProbability(std::string_view Point, double P, uint64_t Seed = 1);

  /// Arms \p Point to fire on every hit.
  void armAlways(std::string_view Point) { armNth(Point, 1, true); }

  /// Disarms \p Point (its counters survive until reset()).
  void disarm(std::string_view Point);

  /// Disarms every point and clears all counters.
  void reset();

  /// Records a hit at \p Point and returns true if the armed trigger
  /// fires. Unarmed points only count hits when some point is armed.
  bool fires(std::string_view Point);

  /// Hits observed at \p Point since the last reset(). Hits are only
  /// counted while at least one point is armed (the unarmed fast path
  /// skips the registry entirely).
  uint64_t hits(std::string_view Point) const;

  /// Times \p Point actually fired since the last reset().
  uint64_t fired(std::string_view Point) const;

  /// Point-in-time hit/fired counts of every point the injector has
  /// seen since the last reset(), sorted by name (metrics export).
  std::vector<FaultPointCounts> snapshotCounts() const;

  /// Arms points from a spec string (the DGGT_FAULTS format):
  ///
  ///   spec    := entry (',' entry)*
  ///   entry   := point '=' trigger
  ///   trigger := 'always' | 'nth:' N | 'every:' N | 'prob:' P ['@' SEED]
  ///
  /// e.g. "dggt.merge=nth:3,pathsearch.visit=prob:0.01@42". Numbers go
  /// through the same strict parser as DGGT_TIMEOUT_MS. On a malformed
  /// spec nothing is armed, \p Error describes the problem, and false is
  /// returned.
  bool armFromSpec(std::string_view Spec, std::string &Error);

  /// True when any point is armed anywhere (relaxed load; see
  /// dggt::faultFires()).
  static bool anyArmed() {
    return ArmedPoints.load(std::memory_order_relaxed) != 0;
  }

private:
  struct Point {
    enum class Trigger { Disarmed, Nth, Probability } Kind = Trigger::Disarmed;
    uint64_t Nth = 0;
    bool Repeating = false;
    double P = 0.0;
    std::mt19937_64 Rng;
    uint64_t Hits = 0;      ///< Hits since this point was last (re)armed.
    uint64_t TotalHits = 0; ///< Hits since reset().
    uint64_t Fired = 0;
  };

  Point &pointFor(std::string_view Name);

  static std::atomic<unsigned> ArmedPoints;

  mutable std::mutex M;
  std::unordered_map<std::string, Point> Points;
};

/// Call-site helper: records a hit at \p Point and returns true if it
/// fires. Near-zero cost (one relaxed atomic load) while nothing is
/// armed, so it is safe inside the synthesis inner loops.
inline bool faultFires(std::string_view Point) {
  if (!FaultInjector::anyArmed())
    return false;
  return FaultInjector::instance().fires(Point);
}

} // namespace dggt

#endif // DGGT_SUPPORT_FAULTINJECTION_H
