//===- support/Clock.cpp - Injectable monotonic time source ---------------===//

#include "support/Clock.h"

using namespace dggt;

ClockSource::~ClockSource() = default;

const ClockSource &dggt::steadyClock() {
  static const SteadyClockSource C;
  return C;
}
