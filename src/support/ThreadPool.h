//===- support/ThreadPool.h - Keyed worker pool -----------------*- C++ -*-===//
///
/// \file
/// A fixed-size worker pool over a bounded, *keyed* submission queue.
/// Every task carries a key (the service layer uses the domain name);
/// tasks of one key run in FIFO order, and a worker that just ran a task
/// for key K keeps draining K's queue for up to Options::CoalesceBatch
/// tasks before rotating to another key. This per-key coalescing is what
/// makes shared per-domain state (path caches, grammar reachability
/// tables) stay warm under mixed traffic: consecutive queries against
/// the same domain hit the same caches back to back instead of
/// interleaving with other domains' working sets.
///
/// Fairness across keys is round-robin over a ready list, so one
/// flooding key cannot starve the others for longer than a batch.
/// Capacity is enforced at submission (trySubmit() returns false when
/// the queue is full) — the caller owns the shed policy; the pool never
/// drops an accepted task. Destruction drains: accepted tasks all run
/// before the workers exit, so future-style completions are never lost.
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_SUPPORT_THREADPOOL_H
#define DGGT_SUPPORT_THREADPOOL_H

#include "support/Clock.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace dggt {

/// Fixed-size worker pool with a bounded keyed queue and per-key
/// coalescing. Thread-safe; trySubmit() may be called from any thread,
/// including from inside a running task.
class ThreadPool {
public:
  struct Options {
    /// Worker threads; 0 means std::thread::hardware_concurrency()
    /// (itself clamped to at least 1).
    unsigned Workers = 0;
    /// Maximum queued-but-not-started tasks; 0 means unbounded.
    size_t QueueCap = 0;
    /// How many consecutive tasks of one key a worker drains before
    /// rotating to the next ready key (>= 1).
    unsigned CoalesceBatch = 8;
    /// Time source for queue-wait accounting; null = the real steady
    /// clock. Must outlive the pool (tests inject a VirtualClock).
    const ClockSource *Clock = nullptr;
  };

  /// Monotonic pool counters (relaxed snapshots; exact once idle).
  struct Stats {
    uint64_t Submitted = 0; ///< Tasks accepted by trySubmit().
    uint64_t Rejected = 0;  ///< trySubmit() calls refused by the cap.
    uint64_t Ran = 0;       ///< Tasks completed by a worker.
    uint64_t Coalesced = 0; ///< Tasks run by staying on the same key.
    /// Total submit-to-dequeue wait (microseconds) over every started
    /// task; WaitUsTotal / Ran is the mean queue wait.
    uint64_t WaitUsTotal = 0;
  };

  ThreadPool() : ThreadPool(Options()) {}
  explicit ThreadPool(Options O);
  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Fn under \p Key. Returns false — without queuing — when
  /// the pool is shutting down or the queue is at capacity; the caller
  /// decides what shedding means.
  bool trySubmit(std::string_view Key, std::function<void()> Fn);

  /// Process-wide hook that may rewrap every submitted task (e.g. to
  /// capture the submitter's trace context and restore it in the
  /// worker). The pool itself has no observability dependency; the obs
  /// layer installs its wrapper at static-init time. The wrapper runs on
  /// the *submitting* thread, outside the pool lock, and must return a
  /// callable that runs the original task exactly once. Null disables.
  using TaskWrapper = std::function<void()> (*)(std::function<void()>);
  static void setTaskWrapper(TaskWrapper W);

  /// Tasks accepted but not yet started.
  size_t queueDepth() const;

  /// Tasks currently executing (0..workers()). With queueDepth() this is
  /// the live load picture a status endpoint wants.
  size_t running() const;

  unsigned workers() const { return static_cast<unsigned>(Threads.size()); }

  /// Live limits. The setters let a load controller retune a running
  /// pool: both take effect on the next trySubmit() / key rotation, and
  /// shrinking the cap below the current depth only stops *new*
  /// admissions (accepted tasks always run).
  size_t queueCap() const { return EffQueueCap.load(std::memory_order_relaxed); }
  void setQueueCap(size_t Cap) {
    EffQueueCap.store(Cap, std::memory_order_relaxed);
  }
  unsigned coalesceBatch() const {
    return EffCoalesceBatch.load(std::memory_order_relaxed);
  }
  void setCoalesceBatch(unsigned Batch) {
    EffCoalesceBatch.store(Batch < 1 ? 1 : Batch, std::memory_order_relaxed);
  }

  Stats stats() const;

  /// Blocks until every task accepted so far has finished (tests).
  void drain();

private:
  void workerLoop();

  /// One queued task plus its submission instant (wait accounting).
  struct QueuedTask {
    std::function<void()> Fn;
    ClockSource::TimePoint Enqueued;
  };

  Options Opts;
  /// Live limits, runtime-adjustable without the mutex (relaxed is fine:
  /// the cap is advisory backpressure, not an invariant).
  std::atomic<size_t> EffQueueCap{0};
  std::atomic<unsigned> EffCoalesceBatch{1};
  mutable std::mutex M;
  std::condition_variable WorkReady;
  std::condition_variable Idle;
  /// FIFO per key; erased keys are kept (few domains, stable pointers).
  std::unordered_map<std::string, std::deque<QueuedTask>> Queues;
  /// Keys that may have work; may hold stale duplicates (workers skip
  /// entries whose queue turned out empty). Invariant: the number of
  /// entries is always >= the number of queued tasks, so a worker that
  /// sees Size > 0 always finds a task by scanning this list.
  std::deque<std::string> Ready;
  size_t Size = 0;     ///< Queued-but-not-started tasks.
  size_t Running = 0;  ///< Tasks currently executing.
  bool Stopping = false;
  Stats Counts;
  std::vector<std::thread> Threads;
};

} // namespace dggt

#endif // DGGT_SUPPORT_THREADPOOL_H
