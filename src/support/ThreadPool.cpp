//===- support/ThreadPool.cpp - Keyed worker pool -------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace dggt;

namespace {
std::atomic<ThreadPool::TaskWrapper> GlobalTaskWrapper{nullptr};
} // namespace

void ThreadPool::setTaskWrapper(TaskWrapper W) {
  GlobalTaskWrapper.store(W, std::memory_order_release);
}

ThreadPool::ThreadPool(Options O) : Opts(O) {
  if (Opts.Workers == 0)
    Opts.Workers = std::max(1u, std::thread::hardware_concurrency());
  Opts.CoalesceBatch = std::max(1u, Opts.CoalesceBatch);
  EffQueueCap.store(Opts.QueueCap, std::memory_order_relaxed);
  EffCoalesceBatch.store(Opts.CoalesceBatch, std::memory_order_relaxed);
  Threads.reserve(Opts.Workers);
  for (unsigned I = 0; I < Opts.Workers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(M);
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

bool ThreadPool::trySubmit(std::string_view Key, std::function<void()> Fn) {
  if (TaskWrapper W = GlobalTaskWrapper.load(std::memory_order_acquire))
    Fn = W(std::move(Fn));
  size_t Cap = EffQueueCap.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> L(M);
    if (Stopping || (Cap != 0 && Size >= Cap)) {
      ++Counts.Rejected;
      return false;
    }
    std::string K(Key);
    Queues[K].push_back({std::move(Fn), clockNow(Opts.Clock)});
    Ready.push_back(std::move(K));
    ++Size;
    ++Counts.Submitted;
  }
  WorkReady.notify_one();
  return true;
}

size_t ThreadPool::queueDepth() const {
  std::lock_guard<std::mutex> L(M);
  return Size;
}

size_t ThreadPool::running() const {
  std::lock_guard<std::mutex> L(M);
  return Running;
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard<std::mutex> L(M);
  return Counts;
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> L(M);
  Idle.wait(L, [this] { return Size == 0 && Running == 0; });
}

void ThreadPool::workerLoop() {
  // Per-worker coalescing state: the key of the last task this worker
  // ran and how many tasks in a row it has taken from that key.
  std::string LastKey;
  unsigned Batch = 0;

  std::unique_lock<std::mutex> L(M);
  for (;;) {
    WorkReady.wait(L, [this] { return Stopping || Size > 0; });
    if (Size == 0) {
      if (Stopping)
        return; // Drained: Stopping with an empty queue.
      continue;
    }

    // Prefer the key we are already on (warm caches) up to the batch
    // cap; then rotate to the next ready key for fairness.
    std::deque<QueuedTask> *Q = nullptr;
    bool Coalesced = false;
    if (!LastKey.empty() &&
        Batch < EffCoalesceBatch.load(std::memory_order_relaxed)) {
      auto It = Queues.find(LastKey);
      if (It != Queues.end() && !It->second.empty()) {
        Q = &It->second;
        Coalesced = true;
      }
    }
    while (!Q && !Ready.empty()) {
      std::string K = std::move(Ready.front());
      Ready.pop_front();
      auto It = Queues.find(K);
      if (It != Queues.end() && !It->second.empty()) {
        LastKey = std::move(K);
        Batch = 0;
        Q = &It->second;
      }
      // Stale entry (its task was coalesced away): keep scanning. The
      // entries >= tasks invariant guarantees a hit while Size > 0.
    }
    if (!Q)
      continue;

    QueuedTask Task = std::move(Q->front());
    Q->pop_front();
    --Size;
    ++Running;
    ++Batch;
    if (Coalesced)
      ++Counts.Coalesced;
    Counts.WaitUsTotal += static_cast<uint64_t>(std::max<int64_t>(
        0, std::chrono::duration_cast<std::chrono::microseconds>(
               clockNow(Opts.Clock) - Task.Enqueued)
               .count()));

    L.unlock();
    Task.Fn();
    L.lock();

    ++Counts.Ran;
    --Running;
    if (Size == 0 && Running == 0)
      Idle.notify_all();
  }
}
