//===- support/Arena.cpp - Per-query bump allocator -----------------------===//

#include "support/Arena.h"

#include <atomic>
#include <cassert>
#include <cstring>

#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_ADDRESS__) || __has_feature(address_sanitizer)
#include <sanitizer/lsan_interface.h>
#define DGGT_HAVE_LSAN 1
#endif

void dggt::lsanIgnoreIntentionalLeak(const void *P) {
#ifdef DGGT_HAVE_LSAN
  __lsan_ignore_object(P);
#else
  (void)P;
#endif
}

using namespace dggt;

namespace {

/// Process-wide peak of any arena's high-water mark (relaxed max).
std::atomic<uint64_t> GProcessHighWater{0};

void raiseProcessHighWater(uint64_t V) {
  uint64_t Cur = GProcessHighWater.load(std::memory_order_relaxed);
  while (V > Cur && !GProcessHighWater.compare_exchange_weak(
                        Cur, V, std::memory_order_relaxed))
    ;
}

} // namespace

Arena::Arena(size_t FirstChunkBytes)
    : NextChunkBytes(FirstChunkBytes < 64 ? 64 : FirstChunkBytes) {}

Arena::~Arena() { publishPeak(); }

void Arena::publishPeak() { raiseProcessHighWater(highWater()); }

uint64_t Arena::processHighWater() {
  return GProcessHighWater.load(std::memory_order_relaxed);
}

void *Arena::allocate(size_t Bytes, size_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 && "non-power-of-two align");
  if (Bytes == 0)
    Bytes = 1;
  // Find a retained chunk with room, aligning the bump pointer.
  while (Cur < Chunks.size()) {
    Chunk &C = Chunks[Cur];
    uintptr_t Base = reinterpret_cast<uintptr_t>(C.Mem.get());
    uintptr_t P = (Base + Offset + (Align - 1)) & ~(uintptr_t(Align) - 1);
    size_t NewOffset = static_cast<size_t>(P - Base) + Bytes;
    if (NewOffset <= C.Size) {
      Used += NewOffset - Offset;
      Offset = NewOffset;
      return reinterpret_cast<void *>(P);
    }
    // Chunk exhausted: charge the tail we skip and move on.
    Used += C.Size - Offset;
    ++Cur;
    Offset = 0;
  }
  // Need a fresh chunk. operator new guarantees max_align_t alignment;
  // over-align larger requests by padding.
  size_t Pad = Align > alignof(std::max_align_t) ? Align : 0;
  size_t Want = Bytes + Pad;
  size_t Size = NextChunkBytes;
  if (Size < Want)
    Size = Want;
  if (NextChunkBytes < MaxChunkBytes)
    NextChunkBytes = NextChunkBytes * 2 < MaxChunkBytes ? NextChunkBytes * 2
                                                        : MaxChunkBytes;
  Chunk C;
  C.Mem = std::make_unique<char[]>(Size);
  C.Size = Size;
  Reserved += Size;
  Chunks.push_back(std::move(C));
  Cur = Chunks.size() - 1;
  uintptr_t Base = reinterpret_cast<uintptr_t>(Chunks[Cur].Mem.get());
  uintptr_t P = (Base + (Align - 1)) & ~(uintptr_t(Align) - 1);
  Offset = static_cast<size_t>(P - Base) + Bytes;
  Used += Offset;
  return reinterpret_cast<void *>(P);
}

void Arena::reset() {
  if (Used > Peak)
    Peak = Used;
  publishPeak();
  Used = 0;
  Cur = 0;
  Offset = 0;
  ++Generation;
}

Arena &dggt::queryArena() {
  // Intentionally leaked (thread_local destruction order vs. static
  // teardown mirrors the obs singletons); one arena per worker thread.
  thread_local Arena *A = [] {
    auto *P = new Arena();
    lsanIgnoreIntentionalLeak(P);
    return P;
  }();
  return *A;
}
