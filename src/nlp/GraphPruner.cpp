//===- nlp/GraphPruner.cpp - Query-graph pruning (step 2) -----------------===//

#include "nlp/GraphPruner.h"

#include "nlp/DependencyParser.h"

#include <cassert>
#include <unordered_set>

using namespace dggt;

namespace {

bool isQuantifierWord(std::string_view W) {
  static const std::unordered_set<std::string_view> Set = {"each", "every",
                                                           "all", "any"};
  return Set.count(W) != 0;
}

/// Positional prepositions carry API semantics of their own ("before 3
/// words" -> BEFORE(WORDNUMBER(3))) and survive pruning; downstream they
/// become orphans that relocation places correctly.
bool isPositionalPreposition(std::string_view W) {
  return W == "after" || W == "before";
}

/// Decides whether a node survives pruning based on POS, dependency type
/// and (for determiners) the word itself.
bool survives(const DepNode &N, const std::optional<DepEdge> &Incoming,
              const PruneOptions &Opts) {
  switch (N.Tag) {
  case Pos::Verb:
  case Pos::Noun:
  case Pos::Literal:
  case Pos::Number:
  case Pos::Adjective:
    break;
  case Pos::Determiner:
    return !Opts.DropQuantifiers && isQuantifierWord(N.Word);
  case Pos::Adverb:
    return N.Word == "not";
  case Pos::Preposition:
    return isPositionalPreposition(N.Word);
  case Pos::Auxiliary:
  case Pos::Pronoun:
  case Pos::Conjunction:
  case Pos::Punct:
  case Pos::Other:
    return false;
  }
  if (!Incoming)
    return true;
  // Content-tagged words hanging off function-word relations (e.g. a noun
  // the parser attached as Case) still get dropped.
  if (N.Tag == Pos::Preposition)
    return true; // Positional prepositions survive their Case edge.
  return Incoming->Type != DepType::Case && Incoming->Type != DepType::Aux;
}

} // namespace

DependencyGraph dggt::pruneQueryGraph(const DependencyGraph &Raw,
                                      const PruneOptions &Opts) {
  DependencyGraph Pruned;
  if (Raw.size() == 0)
    return Pruned;

  std::vector<int> Remap(Raw.size(), -1);
  for (unsigned Id = 0; Id < Raw.size(); ++Id) {
    DepNode N = Raw.node(Id);
    bool FramingRoot = Raw.hasRoot() && Id == Raw.root() &&
                       Opts.FramingRootVerbs.count(N.Word) != 0;
    if (FramingRoot || !survives(N, Raw.incomingEdge(Id), Opts))
      continue;
    // Record the case-marking preposition before its node is dropped.
    for (unsigned Child : Raw.childrenOf(Id)) {
      std::optional<DepEdge> E = Raw.incomingEdge(Child);
      if (E && E->Type == DepType::Case &&
          Raw.node(Child).Tag == Pos::Preposition)
        N.CasePrep = Raw.node(Child).Word;
    }
    Remap[Id] = static_cast<int>(Pruned.addNode(std::move(N)));
  }

  // Root: the raw root if it survived; else promote its object/subject
  // child (framing-verb case); else the first survivor.
  unsigned Root = ~0u;
  if (Raw.hasRoot() && Remap[Raw.root()] >= 0) {
    Root = static_cast<unsigned>(Remap[Raw.root()]);
  } else if (Raw.hasRoot()) {
    for (DepType Preferred : {DepType::Obj, DepType::Nsubj, DepType::Nmod})
      for (const DepEdge &E : Raw.edges()) {
        if (Root == ~0u && E.Governor == Raw.root() &&
            E.Type == Preferred && Remap[E.Dependent] >= 0)
          Root = static_cast<unsigned>(Remap[E.Dependent]);
      }
  }
  for (unsigned Id = 0; Id < Raw.size() && Root == ~0u; ++Id)
    if (Remap[Id] >= 0)
      Root = static_cast<unsigned>(Remap[Id]);
  if (Root == ~0u)
    return Pruned; // Everything pruned away.
  Pruned.setRoot(Root);

  // Copy edges whose nearest surviving ancestor stands in for a pruned
  // governor, so children of dropped nodes are not lost.
  auto SurvivingAncestor = [&](unsigned Id) -> int {
    unsigned Cur = Id;
    for (size_t Steps = 0; Steps <= Raw.size(); ++Steps) {
      std::optional<unsigned> Gov = Raw.governorOf(Cur);
      if (!Gov)
        return -1;
      if (Remap[*Gov] >= 0)
        return Remap[*Gov];
      Cur = *Gov;
    }
    return -1;
  };

  for (unsigned Id = 0; Id < Raw.size(); ++Id) {
    if (Remap[Id] < 0 || static_cast<unsigned>(Remap[Id]) == Root)
      continue;
    std::optional<DepEdge> In = Raw.incomingEdge(Id);
    int NewGov = SurvivingAncestor(Id);
    unsigned NewDep = static_cast<unsigned>(Remap[Id]);
    if (NewGov >= 0 && static_cast<unsigned>(NewGov) != NewDep) {
      DepType Ty = In ? In->Type : DepType::Dep;
      Pruned.addEdge(static_cast<unsigned>(NewGov), NewDep, Ty);
    } else {
      // Unattached content: HISyn hangs it off the root.
      Pruned.addEdge(Root, NewDep, DepType::Dep);
    }
  }
  return Pruned;
}

DependencyGraph dggt::parseAndPrune(std::string_view Query,
                                    const PruneOptions &Opts) {
  return pruneQueryGraph(parseDependencies(Query), Opts);
}
