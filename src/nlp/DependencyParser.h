//===- nlp/DependencyParser.h - Rule-based dependency parser ----*- C++ -*-===//
///
/// \file
/// Step 1 of the HISyn pipeline: dependency parsing of the NL query.
///
/// This is the deterministic stand-in for the external NLP parser the
/// paper wraps (Stanford CoreNLP); see DESIGN.md. It is a left-to-right
/// rule-based parser specialised for imperative programming queries
/// ("insert X at Y", "find Zs whose W is V"). Like a statistical parser
/// it makes systematic attachment mistakes (quantifiers, conjuncts,
/// condition subjects), which downstream shows up as *orphan nodes* —
/// exactly the phenomenon the paper's orphan-node-relocation
/// optimization targets (Section V-B).
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_NLP_DEPENDENCYPARSER_H
#define DGGT_NLP_DEPENDENCYPARSER_H

#include "nlp/DependencyGraph.h"

#include <string_view>

namespace dggt {

/// Parses \p Query into a query dependency graph.
///
/// Every token becomes a node (function words included; step 2 prunes
/// them). The result is a tree rooted at the main imperative verb, or at
/// the first content word for verbless queries. Never fails; an empty
/// query yields an empty graph without a root.
DependencyGraph parseDependencies(std::string_view Query);

/// Parses pre-tagged tokens (used by tests to bypass the tagger).
DependencyGraph parseDependencies(const std::vector<TaggedToken> &Tagged);

} // namespace dggt

#endif // DGGT_NLP_DEPENDENCYPARSER_H
