//===- nlp/DependencyGraph.h - Query dependency graphs ----------*- C++ -*-===//
///
/// \file
/// The query dependency graph of HISyn's step 1 and its pruned form
/// (step 2). A dependency relation is an arrow from a governor word to a
/// dependent word labelled with a dependency type (Section II).
///
/// The same structure serves both the raw parse and the pruned graph; in
/// the pruned graph a node may carry a multi-word phrase (compound and
/// adjective modifiers collapsed into their head, e.g. "binary operators"
/// becomes one node with phrase {binary, operator}).
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_NLP_DEPENDENCYGRAPH_H
#define DGGT_NLP_DEPENDENCYGRAPH_H

#include "text/PosTagger.h"

#include <optional>
#include <string>
#include <vector>

namespace dggt {

/// Dependency relation types (Universal-Dependencies-inspired subset).
enum class DepType {
  Root,     ///< Virtual relation marking the root word.
  Obj,      ///< Direct object: "insert" -> "string".
  Nmod,     ///< Preposition-mediated nominal modifier: "start" -of-> "line".
  Acl,      ///< Clausal modifier of a noun: "line" -> "containing".
  Det,      ///< Determiner/quantifier: "line" -> "every".
  Amod,     ///< Adjectival modifier: "operators" -> "binary".
  Compound, ///< Noun compound: "expressions" -> "call".
  Conj,     ///< Conjunct: "words" -and-> "numbers".
  NumMod,   ///< Numeric modifier: "characters" -> "14".
  Lit,      ///< Literal argument: "named" -> "PI".
  Case,     ///< Preposition marking a nominal: "start" -> "at".
  Aux,      ///< Auxiliary/copula: "literal" -> "is".
  Advcl,    ///< Adverbial (e.g. conditional) clause: "add" -> "starts".
  Nsubj,    ///< Nominal subject: "starts" -> "sentence".
  Advmod,   ///< Adverbial modifier: "containing" -> "not".
  Dep,      ///< Unclassified attachment (parser fallback).
};

/// Returns a short name for \p T ("obj", "nmod", ...).
std::string_view depTypeName(DepType T);

/// One word (or collapsed phrase) of a dependency graph.
struct DepNode {
  /// Head word, lower-cased ("operators").
  std::string Word;
  /// Full phrase including collapsed modifiers ({"binary", "operator"});
  /// equals {Word} when nothing was collapsed. Kept singular-stemmed for
  /// matching.
  std::vector<std::string> Phrase;
  /// POS of the head word.
  Pos Tag = Pos::Other;
  /// Literal payload: quoted strings and collapsed numeric modifiers.
  std::optional<std::string> Literal;
  /// Preposition that case-marked this nominal ("in each line" -> "in"),
  /// recorded by the pruner before the Case node is dropped. NLU matching
  /// uses it as semantic-role context.
  std::optional<std::string> CasePrep;
  /// Index of the head token in the original query (for diagnostics).
  unsigned TokenIndex = 0;
};

/// One dependency relation.
struct DepEdge {
  unsigned Governor = 0;
  unsigned Dependent = 0;
  DepType Type = DepType::Dep;
};

/// A rooted dependency graph over words.
///
/// Invariants maintained by the parser and pruner: every node except the
/// root has exactly one incoming edge, and the graph is acyclic (a tree).
class DependencyGraph {
public:
  /// Adds a node and returns its id.
  unsigned addNode(DepNode Node);

  /// Adds an edge. Asserts both endpoints exist and \p Dependent does not
  /// already have a governor.
  void addEdge(unsigned Governor, unsigned Dependent, DepType Type);

  /// Reattaches \p Dependent under \p NewGovernor with \p Type (used by
  /// orphan relocation). The old incoming edge is removed.
  void reattach(unsigned Dependent, unsigned NewGovernor, DepType Type);

  void setRoot(unsigned Node);
  unsigned root() const { return Root; }
  bool hasRoot() const { return Root != ~0u; }

  size_t size() const { return Nodes.size(); }
  const DepNode &node(unsigned Id) const { return Nodes[Id]; }
  DepNode &node(unsigned Id) { return Nodes[Id]; }
  const std::vector<DepEdge> &edges() const { return Edges; }

  /// Ids of the direct dependents of \p Governor.
  std::vector<unsigned> childrenOf(unsigned Governor) const;

  /// Id of the governor of \p Dependent, or nullopt for the root or
  /// unattached nodes.
  std::optional<unsigned> governorOf(unsigned Dependent) const;

  /// The edge whose dependent is \p Dependent, if any.
  std::optional<DepEdge> incomingEdge(unsigned Dependent) const;

  /// Depth of \p Node below the root (root is 0). Unattached nodes report
  /// depth 1 (HISyn treats them as children of the root).
  unsigned depthOf(unsigned Node) const;

  /// Largest edge level in the graph; the level of an edge is the depth of
  /// its dependent (Section IV-B traverses levels bottom-up).
  unsigned maxLevel() const;

  /// All edges whose dependent sits at depth \p Level.
  std::vector<DepEdge> edgesAtLevel(unsigned Level) const;

  /// Nodes without an incoming edge that are not the root.
  std::vector<unsigned> unattachedNodes() const;

  /// Multi-line debug rendering ("insert -obj-> string").
  std::string dump() const;

private:
  std::vector<DepNode> Nodes;
  std::vector<DepEdge> Edges;
  unsigned Root = ~0u;
};

} // namespace dggt

#endif // DGGT_NLP_DEPENDENCYGRAPH_H
