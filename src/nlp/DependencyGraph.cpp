//===- nlp/DependencyGraph.cpp - Query dependency graphs ------------------===//

#include "nlp/DependencyGraph.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace dggt;

std::string_view dggt::depTypeName(DepType T) {
  switch (T) {
  case DepType::Root:
    return "root";
  case DepType::Obj:
    return "obj";
  case DepType::Nmod:
    return "nmod";
  case DepType::Acl:
    return "acl";
  case DepType::Det:
    return "det";
  case DepType::Amod:
    return "amod";
  case DepType::Compound:
    return "compound";
  case DepType::Conj:
    return "conj";
  case DepType::NumMod:
    return "nummod";
  case DepType::Lit:
    return "lit";
  case DepType::Case:
    return "case";
  case DepType::Aux:
    return "aux";
  case DepType::Advcl:
    return "advcl";
  case DepType::Nsubj:
    return "nsubj";
  case DepType::Advmod:
    return "advmod";
  case DepType::Dep:
    return "dep";
  }
  return "dep";
}

unsigned DependencyGraph::addNode(DepNode Node) {
  if (Node.Phrase.empty())
    Node.Phrase.push_back(Node.Word);
  Nodes.push_back(std::move(Node));
  return static_cast<unsigned>(Nodes.size() - 1);
}

void DependencyGraph::addEdge(unsigned Governor, unsigned Dependent,
                              DepType Type) {
  assert(Governor < Nodes.size() && Dependent < Nodes.size() &&
         "edge endpoint out of range");
  assert(Governor != Dependent && "self dependency");
  assert(!governorOf(Dependent).has_value() &&
         "dependent already has a governor");
  Edges.push_back({Governor, Dependent, Type});
}

void DependencyGraph::reattach(unsigned Dependent, unsigned NewGovernor,
                               DepType Type) {
  assert(NewGovernor < Nodes.size() && Dependent < Nodes.size() &&
         "edge endpoint out of range");
  Edges.erase(std::remove_if(Edges.begin(), Edges.end(),
                             [&](const DepEdge &E) {
                               return E.Dependent == Dependent;
                             }),
              Edges.end());
  Edges.push_back({NewGovernor, Dependent, Type});
}

void DependencyGraph::setRoot(unsigned Node) {
  assert(Node < Nodes.size() && "root out of range");
  Root = Node;
}

std::vector<unsigned> DependencyGraph::childrenOf(unsigned Governor) const {
  std::vector<unsigned> Children;
  for (const DepEdge &E : Edges)
    if (E.Governor == Governor)
      Children.push_back(E.Dependent);
  return Children;
}

std::optional<unsigned> DependencyGraph::governorOf(unsigned Dependent) const {
  for (const DepEdge &E : Edges)
    if (E.Dependent == Dependent)
      return E.Governor;
  return std::nullopt;
}

std::optional<DepEdge> DependencyGraph::incomingEdge(unsigned Dependent) const {
  for (const DepEdge &E : Edges)
    if (E.Dependent == Dependent)
      return E;
  return std::nullopt;
}

unsigned DependencyGraph::depthOf(unsigned Node) const {
  unsigned Depth = 0;
  unsigned Cur = Node;
  // Bounded walk; the parser guarantees acyclicity but stay safe anyway.
  for (size_t Steps = 0; Steps <= Nodes.size(); ++Steps) {
    if (Cur == Root)
      return Depth;
    std::optional<unsigned> Gov = governorOf(Cur);
    if (!Gov)
      return Depth + 1; // Unattached: HISyn hangs it off the root.
    Cur = *Gov;
    ++Depth;
  }
  assert(false && "cycle in dependency graph");
  return Depth;
}

unsigned DependencyGraph::maxLevel() const {
  unsigned Max = 0;
  for (const DepEdge &E : Edges)
    Max = std::max(Max, depthOf(E.Dependent));
  return Max;
}

std::vector<DepEdge> DependencyGraph::edgesAtLevel(unsigned Level) const {
  std::vector<DepEdge> Out;
  for (const DepEdge &E : Edges)
    if (depthOf(E.Dependent) == Level)
      Out.push_back(E);
  return Out;
}

std::vector<unsigned> DependencyGraph::unattachedNodes() const {
  std::vector<unsigned> Out;
  for (unsigned Id = 0; Id < Nodes.size(); ++Id)
    if (Id != Root && !governorOf(Id).has_value())
      Out.push_back(Id);
  return Out;
}

std::string DependencyGraph::dump() const {
  std::string Out;
  for (unsigned Id = 0; Id < Nodes.size(); ++Id) {
    const DepNode &N = Nodes[Id];
    Out += "[" + std::to_string(Id) + "] " + join(N.Phrase, " ");
    if (N.Literal)
      Out += " lit='" + *N.Literal + "'";
    Out += " (" + std::string(posName(N.Tag)) + ")";
    if (Id == Root)
      Out += " <root>";
    Out += "\n";
  }
  for (const DepEdge &E : Edges)
    Out += "  " + Nodes[E.Governor].Word + " -" +
           std::string(depTypeName(E.Type)) + "-> " + Nodes[E.Dependent].Word +
           "\n";
  return Out;
}
