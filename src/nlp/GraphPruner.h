//===- nlp/GraphPruner.h - Query-graph pruning (step 2) ---------*- C++ -*-===//
///
/// \file
/// Step 2 of the HISyn pipeline: prunes non-essential words from the
/// query dependency graph based on POS and dependency type, producing
/// the *pruned dependency graph* the synthesizers consume.
///
/// Dropped: prepositions (Case), auxiliaries (Aux), article determiners,
/// punctuation. Kept: verbs, nouns/phrases, literals, quantifier
/// determiners ("every"), property adjectives ("virtual"), and negations
/// ("not") — everything that can map to an API.
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_NLP_GRAPHPRUNER_H
#define DGGT_NLP_GRAPHPRUNER_H

#include "nlp/DependencyGraph.h"

#include <string>
#include <unordered_set>

namespace dggt {

/// Domain-tunable pruning knobs.
struct PruneOptions {
  /// Imperative root verbs that merely frame a query ("find", "list" in a
  /// code-search domain) and carry no API semantics; the root moves to
  /// the verb's object. Matched on the root node only.
  std::unordered_set<std::string> FramingRootVerbs;
  /// Drop quantifier determiners ("all", "every"). Domains without
  /// occurrence-selector APIs (ASTMatcher) set this; TextEditing keeps
  /// quantifiers because they map to ALL().
  bool DropQuantifiers = false;
};

/// Prunes \p Raw into the graph used for synthesis.
///
/// Nodes the parser left unattached are hung off the root with a Dep
/// edge, matching HISyn's treatment of parse leftovers. The result is a
/// tree whenever \p Raw was one.
DependencyGraph pruneQueryGraph(const DependencyGraph &Raw,
                                const PruneOptions &Opts = {});

/// Convenience: parse + prune.
DependencyGraph parseAndPrune(std::string_view Query,
                              const PruneOptions &Opts = {});

} // namespace dggt

#endif // DGGT_NLP_GRAPHPRUNER_H
