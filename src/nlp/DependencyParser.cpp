//===- nlp/DependencyParser.cpp - Rule-based dependency parser ------------===//

#include "nlp/DependencyParser.h"

#include "support/StringUtils.h"
#include "text/Tokenizer.h"

#include <cassert>
#include <optional>
#include <unordered_set>

using namespace dggt;

namespace {

/// Adjectives that denote checkable properties and therefore stay separate
/// dependency nodes (they map to their own APIs: "virtual" -> isVirtual).
/// Everything else collapses into the head noun's phrase ("binary
/// operators" -> one node).
bool isPropertyAdjective(std::string_view W) {
  static const std::unordered_set<std::string_view> Set = {
      "virtual",  "const",     "constant",  "static", "public",
      "private",  "protected", "pure",      "empty",  "blank",
      "explicit", "implicit",  "default",   "global", "local",
      "signed",   "unsigned",  "uppercase", "lowercase",
      // Ordinals select occurrences ("the first line" -> FIRST()).
      "first",    "last",      "second",    "third",
      // Code-analysis property words that map to narrowing matchers.
      "variadic", "inline",    "constexpr", "abstract", "polymorphic",
      "final",    "prefix",    "postfix",   "deleted",  "defaulted",
      "anonymous","trivial",   "scoped",    "weak",     "mutable",
      "noexcept",
  };
  return Set.count(W) != 0;
}

/// Quantifier determiners are kept as nodes: they carry iteration
/// semantics ("every line" -> ALL()). Articles are droppable.
bool isQuantifier(std::string_view W) {
  static const std::unordered_set<std::string_view> Set = {
      "each", "every", "all", "any",
  };
  return Set.count(W) != 0;
}

/// Participle verbs that modify the preceding noun ("lines *containing*
/// numerals", "a method *named* PI").
bool isParticiple(std::string_view W) {
  if (endsWith(W, "ing"))
    return true;
  static const std::unordered_set<std::string_view> Set = {
      "named", "called", "declared", "defined", "derived", "marked",
  };
  return Set.count(W) != 0;
}

/// Incremental parser state. Nodes are created eagerly; attachments that
/// need a future head are parked in Pending* members.
class Parser {
public:
  explicit Parser(const std::vector<TaggedToken> &Tagged) : Tagged(Tagged) {}

  DependencyGraph run() {
    for (size_t I = 0; I < Tagged.size(); ++I)
      step(I);
    finish();
    return std::move(G);
  }

private:
  const std::vector<TaggedToken> &Tagged;
  DependencyGraph G;

  std::optional<unsigned> RootVerb;
  bool RootIsConditional = false;
  std::optional<unsigned> ClauseVerb;
  std::optional<unsigned> LastNoun;
  unsigned LastNounToken = 0;
  unsigned ClauseVerbToken = 0;

  bool RelPending = false;   ///< Saw "which"/"that"/"who".
  bool WhoseActive = false;  ///< Saw "whose": next noun is a possessive.
  bool CondOpen = false;     ///< Inside an "if"/"when" clause.
  bool ConjPending = false;  ///< Saw "and"/"or".
  std::optional<unsigned> CopulaSubject; ///< "X is ...": predicate goes here.

  std::vector<unsigned> PendingFunction;  ///< Articles/preps/aux awaiting head.
  std::vector<DepType> PendingFunctionTy; ///< Matching edge types.
  std::vector<unsigned> PendingQuant;     ///< Quantifier nodes awaiting noun.
  std::vector<unsigned> PendingAdj;       ///< Property adjectives awaiting noun.
  std::vector<std::string> PendingMods;   ///< Collapsible modifier words.
  std::optional<std::string> PendingNumber;
  std::vector<unsigned> PendingSubjects;  ///< Nouns seen before any verb.

  unsigned makeNode(const TaggedToken &TT) {
    DepNode N;
    N.Word = TT.Tok.Text;
    N.Tag = TT.Tag;
    N.TokenIndex = TT.Tok.Index;
    if (TT.Tok.Kind == TokenKind::Literal || TT.Tok.Kind == TokenKind::Number)
      N.Literal = TT.Tok.Text;
    return G.addNode(std::move(N));
  }

  Pos tagAt(size_t I) const {
    return I < Tagged.size() ? Tagged[I].Tag : Pos::Other;
  }

  /// True when the token at \p I acts as part of a noun phrase that is
  /// still being assembled (so a verb-tagged word like "call" in "call
  /// expressions" is really a compound modifier).
  bool looksLikeCompoundModifier(size_t I) const {
    if (tagAt(I + 1) != Pos::Noun && tagAt(I + 1) != Pos::Adjective)
      return false;
    // Participles modify the preceding noun ("lines containing numerals"),
    // they never compound with the following one.
    if (isParticiple(Tagged[I].Tok.Text))
      return false;
    // Only once a clause verb exists; sentence-initial verbs stay verbs.
    return ClauseVerb.has_value() && !RelPending;
  }

  void flushFunctionWordsTo(unsigned Head) {
    for (size_t I = 0; I < PendingFunction.size(); ++I)
      G.addEdge(Head, PendingFunction[I], PendingFunctionTy[I]);
    PendingFunction.clear();
    PendingFunctionTy.clear();
  }

  void attachNounModifiers(unsigned NounId) {
    flushFunctionWordsTo(NounId);
    for (unsigned Q : PendingQuant)
      G.addEdge(NounId, Q, DepType::Det);
    PendingQuant.clear();
    for (unsigned A : PendingAdj)
      G.addEdge(NounId, A, DepType::Amod);
    PendingAdj.clear();
    if (!PendingMods.empty()) {
      DepNode &N = G.node(NounId);
      std::vector<std::string> Phrase = PendingMods;
      Phrase.push_back(N.Word);
      N.Phrase = std::move(Phrase);
      PendingMods.clear();
    }
    if (PendingNumber) {
      G.node(NounId).Literal = *PendingNumber;
      PendingNumber.reset();
    }
  }

  void handleNoun(size_t I) {
    const TaggedToken &TT = Tagged[I];
    // Noun directly followed by another noun/adjective-noun is a compound
    // modifier: "call expressions", "float literal". A verb-tagged word
    // continues the compound when it is not a participle and a noun
    // follows it ("declaration *reference* expressions").
    bool NextContinues =
        tagAt(I + 1) == Pos::Noun ||
        (tagAt(I + 1) == Pos::Adjective && tagAt(I + 2) == Pos::Noun) ||
        (tagAt(I + 1) == Pos::Verb && ClauseVerb.has_value() &&
         !isParticiple(Tagged[I + 1].Tok.Text) &&
         tagAt(I + 2) == Pos::Noun);
    if (NextContinues && !isPropertyAdjective(TT.Tok.Text)) {
      PendingMods.push_back(TT.Tok.Text);
      return;
    }

    unsigned N = makeNode(TT);
    attachNounModifiers(N);

    if (CopulaSubject) {
      G.addEdge(*CopulaSubject, N, DepType::Obj);
      CopulaSubject.reset();
    } else if (WhoseActive && LastNoun) {
      G.addEdge(*LastNoun, N, DepType::Nmod);
      WhoseActive = false;
    } else if (ConjPending && LastNoun) {
      G.addEdge(*LastNoun, N, DepType::Conj);
      ConjPending = false;
    } else if (PendingPrep && ClauseVerb) {
      G.addEdge(*ClauseVerb, N, DepType::Nmod);
      PendingPrep.reset();
    } else if (PendingPrep && LastNoun) {
      G.addEdge(*LastNoun, N, DepType::Nmod);
      PendingPrep.reset();
    } else if (ClauseVerb) {
      G.addEdge(*ClauseVerb, N, DepType::Obj);
    } else {
      PendingSubjects.push_back(N);
    }
    LastNoun = N;
    LastNounToken = TT.Tok.Index;
  }

  void handleVerb(size_t I) {
    const TaggedToken &TT = Tagged[I];
    if (looksLikeCompoundModifier(I)) {
      PendingMods.push_back(TT.Tok.Text);
      return;
    }

    unsigned V = makeNode(TT);
    flushFunctionWordsTo(V);

    bool NounIsFresher = LastNoun && (!ClauseVerb ||
                                      LastNounToken > ClauseVerbToken);
    if (RelPending && LastNoun) {
      G.addEdge(*LastNoun, V, DepType::Acl);
      RelPending = false;
    } else if (isParticiple(TT.Tok.Text) && NounIsFresher) {
      G.addEdge(*LastNoun, V, DepType::Acl);
    } else if (!RootVerb) {
      RootVerb = V;
      RootIsConditional = CondOpen;
      G.setRoot(V);
      for (unsigned S : PendingSubjects)
        G.addEdge(V, S, DepType::Nsubj);
      PendingSubjects.clear();
    } else if (RootIsConditional && !CondOpen) {
      // The conditional clause parsed first; this verb is the real main
      // verb. Promote it, demote the old root to an adverbial clause, and
      // lift the clause's subject ("a line" in "if a line contains X,
      // ...") to the new root — it names the iteration scope of the main
      // command, not an argument of the condition.
      G.setRoot(V);
      G.addEdge(V, *RootVerb, DepType::Advcl);
      for (unsigned Child : G.childrenOf(*RootVerb)) {
        std::optional<DepEdge> E = G.incomingEdge(Child);
        if (E && E->Type == DepType::Nsubj)
          G.reattach(Child, V, DepType::Nmod);
      }
      RootVerb = V;
      RootIsConditional = false;
    } else if (ConjPending && ClauseVerb) {
      G.addEdge(*ClauseVerb, V, DepType::Conj);
      ConjPending = false;
    } else {
      G.addEdge(*RootVerb, V, DepType::Dep);
    }
    ClauseVerb = V;
    ClauseVerbToken = TT.Tok.Index;
    PendingPrep.reset();
  }

  void handleLiteralNode(size_t I) {
    const TaggedToken &TT = Tagged[I];
    unsigned L = makeNode(TT);
    flushFunctionWordsTo(L);
    // Attach to the most recently seen content head.
    if (CopulaSubject) {
      G.addEdge(*CopulaSubject, L, DepType::Obj);
      CopulaSubject.reset();
    } else if (LastNoun && (!ClauseVerb || LastNounToken > ClauseVerbToken)) {
      G.addEdge(*LastNoun, L, DepType::Lit);
    } else if (ClauseVerb) {
      G.addEdge(*ClauseVerb, L, DepType::Lit);
    } else {
      PendingSubjects.push_back(L);
    }
    PendingPrep.reset();
  }

  void step(size_t I) {
    const TaggedToken &TT = Tagged[I];
    switch (TT.Tag) {
    case Pos::Verb:
      handleVerb(I);
      return;
    case Pos::Noun:
      handleNoun(I);
      return;
    case Pos::Literal:
      handleLiteralNode(I);
      return;
    case Pos::Number:
      // "14 characters": collapse into the following noun. A standalone
      // number behaves like a literal ("after 14").
      if (tagAt(I + 1) == Pos::Noun)
        PendingNumber = TT.Tok.Text;
      else
        handleLiteralNode(I);
      return;
    case Pos::Determiner: {
      if (isQuantifier(TT.Tok.Text)) {
        PendingQuant.push_back(makeNode(Tagged[I]));
        return;
      }
      if ((TT.Tok.Text == "that" || TT.Tok.Text == "this") &&
          tagAt(I + 1) == Pos::Verb) {
        RelPending = true; // "expressions that call ..."
        return;
      }
      unsigned D = makeNode(TT);
      PendingFunction.push_back(D);
      PendingFunctionTy.push_back(DepType::Det);
      return;
    }
    case Pos::Preposition: {
      // "for loops" / "while loops": the keyword is part of the noun
      // phrase naming the construct, not a case marker.
      if (TT.Tok.Text == "for" &&
          (I + 1 < Tagged.size() &&
           (Tagged[I + 1].Tok.Text == "loop" ||
            Tagged[I + 1].Tok.Text == "loops"))) {
        PendingMods.push_back(TT.Tok.Text);
        return;
      }
      // Phrasal verbs: "starts with", "begins with", "ends with" — the
      // particle joins the verb's phrase instead of case-marking a noun.
      if (ClauseVerb && TT.Tok.Index == ClauseVerbToken + 1 &&
          (TT.Tok.Text == "with" || TT.Tok.Text == "from" ||
           TT.Tok.Text == "on" || TT.Tok.Text == "off") &&
          tagAt(I + 1) != Pos::Noun) {
        G.node(*ClauseVerb).Phrase.push_back(TT.Tok.Text);
        return;
      }
      unsigned P = makeNode(TT);
      PendingFunction.push_back(P);
      PendingFunctionTy.push_back(DepType::Case);
      PendingPrep = TT.Tok.Text;
      return;
    }
    case Pos::Auxiliary: {
      unsigned A = makeNode(TT);
      PendingFunction.push_back(A);
      PendingFunctionTy.push_back(DepType::Aux);
      if (LastNoun)
        CopulaSubject = LastNoun;
      return;
    }
    case Pos::Pronoun:
      if (TT.Tok.Text == "whose") {
        WhoseActive = true;
        return;
      }
      if (TT.Tok.Text == "which" || TT.Tok.Text == "who" ||
          TT.Tok.Text == "what") {
        RelPending = true;
        return;
      }
      return; // it/they/them carry no content here.
    case Pos::Conjunction:
      if (TT.Tok.Text == "and" || TT.Tok.Text == "or") {
        ConjPending = true;
        return;
      }
      if (TT.Tok.Text == "if" || TT.Tok.Text == "when") {
        // "if statements" names a construct, not a conditional clause.
        if (TT.Tok.Text == "if" && tagAt(I + 1) == Pos::Noun) {
          PendingMods.push_back(TT.Tok.Text);
          return;
        }
        CondOpen = true;
        return;
      }
      if (TT.Tok.Text == "then") {
        CondOpen = false;
        return;
      }
      return;
    case Pos::Adjective:
      if (isPropertyAdjective(TT.Tok.Text)) {
        PendingAdj.push_back(makeNode(TT));
        return;
      }
      PendingMods.push_back(TT.Tok.Text);
      return;
    case Pos::Adverb: {
      if (TT.Tok.Text == "not" || TT.Tok.Text == "only") {
        unsigned A = makeNode(TT);
        if (ClauseVerb)
          G.addEdge(*ClauseVerb, A, DepType::Advmod);
        else
          PendingSubjects.push_back(A);
      }
      return; // Other adverbs carry no synthesis content.
    }
    case Pos::Punct:
      if (TT.Tok.Text == ",") {
        CondOpen = false;
        ConjPending = false;
        PendingPrep.reset();
      }
      return;
    case Pos::Other:
      return;
    }
  }

  void finish() {
    // Dangling modifiers with no following noun become nodes of their own
    // so no query content is silently lost.
    for (const std::string &M : PendingMods) {
      DepNode N;
      N.Word = M;
      N.Tag = Pos::Noun;
      unsigned Id = G.addNode(std::move(N));
      if (ClauseVerb)
        G.addEdge(*ClauseVerb, Id, DepType::Obj);
      else
        PendingSubjects.push_back(Id);
      LastNoun = Id;
    }
    PendingMods.clear();

    for (unsigned Q : PendingQuant) {
      if (LastNoun && *LastNoun != Q)
        G.addEdge(*LastNoun, Q, DepType::Det);
    }
    PendingQuant.clear();

    if (!G.hasRoot()) {
      // Verbless query ("all lines containing numbers"): root at the
      // first subject noun.
      if (!PendingSubjects.empty()) {
        G.setRoot(PendingSubjects.front());
        for (size_t I = 1; I < PendingSubjects.size(); ++I)
          G.addEdge(PendingSubjects.front(), PendingSubjects[I],
                    DepType::Dep);
        PendingSubjects.clear();
      } else if (G.size() > 0) {
        G.setRoot(0);
      }
    }
    if (G.hasRoot())
      for (unsigned S : PendingSubjects)
        if (S != G.root())
          G.addEdge(G.root(), S, DepType::Nsubj);
  }

  std::optional<std::string> PendingPrep;
};

} // namespace

DependencyGraph dggt::parseDependencies(const std::vector<TaggedToken> &Tagged) {
  return Parser(Tagged).run();
}

DependencyGraph dggt::parseDependencies(std::string_view Query) {
  return parseDependencies(tagTokens(tokenize(Query)));
}
