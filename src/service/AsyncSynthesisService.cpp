//===- service/AsyncSynthesisService.cpp - Pooled query scheduler ---------===//

#include "service/AsyncSynthesisService.h"

#include "obs/HttpEndpoint.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <chrono>
#include <sstream>
#include <utility>

using namespace dggt;

namespace {

/// Async-layer instruments, resolved once (registry references are
/// stable for the process lifetime).
struct AsyncInstruments {
  obs::Gauge &QueueDepth;
  obs::Counter &Submitted, &Shed, &Cancelled;
  obs::Histogram &QueueWaitMs;

  static AsyncInstruments &get() {
    static AsyncInstruments I{
        obs::registry().gauge("dggt_async_queue_depth"),
        obs::registry().counter("dggt_async_submitted_total"),
        obs::registry().counter("dggt_async_shed_total"),
        obs::registry().counter("dggt_async_cancelled_total"),
        obs::registry().histogram("dggt_async_queue_wait_ms"),
    };
    return I;
  }
};

ServiceReport immediateReport(ServiceStatus St) {
  ServiceReport Rep;
  Rep.St = St;
  return Rep;
}

} // namespace

AsyncSynthesisService::AsyncSynthesisService(AsyncOptions O)
    : Opts(O), Svc(std::move(O.Service)),
      Pool(ThreadPool::Options{Opts.Workers, Opts.QueueCap,
                               Opts.CoalesceBatch}) {
  // Upgrade the endpoint's /statusz to the async view (queue depth, shed
  // counts); health stays the wrapped service's breaker-derived answer.
  if (obs::HttpEndpoint *Ep = Svc.endpoint())
    StatusReg = Ep->setStatusProvider([this] { return statusJson(); });
}

AsyncSynthesisService::~AsyncSynthesisService() {
  // Drop our provider before the pool (and then Svc) shut down; the
  // token-matched clear synchronizes with any in-flight /statusz render
  // and is a no-op if a newer owner has replaced the registration.
  if (obs::HttpEndpoint *Ep = Svc.endpoint())
    Ep->clearStatusProvider(StatusReg);
}

void AsyncSynthesisService::addDomain(const Domain &D) { Svc.addDomain(D); }

std::future<ServiceReport>
AsyncSynthesisService::submit(std::string_view DomainName,
                              std::string_view QueryText) {
  AsyncInstruments &M = AsyncInstruments::get();

  std::promise<ServiceReport> Immediate;

  // Resolve the domain up front: an unknown name fails immediately (no
  // queue slot burned), and a known one pins its deadline *now* so queue
  // wait counts against the query's own budget.
  if (!Svc.hasDomain(DomainName)) {
    Immediate.set_value(immediateReport(ServiceStatus::UnknownDomain));
    return Immediate.get_future();
  }

  auto Task = std::make_shared<std::packaged_task<ServiceReport()>>();

  uint64_t BudgetMs = Svc.optionsFor(DomainName).TotalBudgetMs;
  Budget::Clock::time_point Deadline =
      Budget::Clock::now() + std::chrono::milliseconds(BudgetMs);
  bool Limited = BudgetMs != 0;
  Budget::Clock::time_point Enqueued = Budget::Clock::now();

  std::string Domain(DomainName);
  std::string Query(QueryText);
  *Task = std::packaged_task<ServiceReport()>(
      [this, Domain = std::move(Domain), Query = std::move(Query), Deadline,
       Limited, Enqueued]() -> ServiceReport {
        AsyncInstruments &M = AsyncInstruments::get();
        double WaitMs = std::chrono::duration<double, std::milli>(
                            Budget::Clock::now() - Enqueued)
                            .count();
        M.QueueDepth.set(static_cast<int64_t>(Pool.queueDepth()));
        if (obs::metricsEnabled())
          M.QueueWaitMs.observe(WaitMs);

        // Cancellation of queued-past-deadline work: the budget the
        // ladder would get is already spent, so report the miss without
        // running anything. The empty attempt trail distinguishes a
        // cancelled query from one that timed out mid-ladder.
        if (Limited && Budget::Clock::now() >= Deadline) {
          Cancelled.fetch_add(1, std::memory_order_relaxed);
          M.Cancelled.inc();
          ServiceReport Rep = immediateReport(ServiceStatus::DeadlineExceeded);
          Rep.TotalSeconds = WaitMs / 1000.0;
          return Rep;
        }

        obs::ScopedSpan Span("async.task");
        if (Span.active()) {
          Span.attr("domain", Domain);
          Span.attr("queue_wait_ms", WaitMs);
        }
        Budget Total = Limited ? Budget::until(Deadline) : Budget();
        ServiceReport Rep = Svc.query(Domain, Query, Total);
        Completed.fetch_add(1, std::memory_order_relaxed);
        return Rep;
      });
  std::future<ServiceReport> Fut = Task->get_future();

  if (!Pool.trySubmit(DomainName, [Task] { (*Task)(); })) {
    M.Shed.inc();
    if (obs::metricsEnabled())
      obs::registry()
          .counter("dggt_service_queries_total",
                   {{"domain", std::string(DomainName)},
                    {"status",
                     std::string(serviceStatusName(ServiceStatus::Overloaded))}})
          .inc();
    // The packaged task was never run; satisfy the caller through a
    // fresh promise so the returned future is immediately ready.
    Immediate.set_value(immediateReport(ServiceStatus::Overloaded));
    return Immediate.get_future();
  }

  M.Submitted.inc();
  M.QueueDepth.set(static_cast<int64_t>(Pool.queueDepth()));
  return Fut;
}

AsyncStats AsyncSynthesisService::stats() const {
  ThreadPool::Stats P = Pool.stats();
  AsyncStats St;
  St.Submitted = P.Submitted;
  St.Shed = P.Rejected;
  St.Cancelled = Cancelled.load(std::memory_order_relaxed);
  St.Completed = Completed.load(std::memory_order_relaxed);
  St.Coalesced = P.Coalesced;
  return St;
}

std::string AsyncSynthesisService::statusJson() const {
  AsyncStats St = stats();
  std::ostringstream OS;
  OS << "{\"workers\":" << workers() << ",\"queue_depth\":" << queueDepth()
     << ",\"queue_cap\":" << Opts.QueueCap
     << ",\"running\":" << runningTasks()
     << ",\"coalesce_batch\":" << Opts.CoalesceBatch
     << ",\"submitted\":" << St.Submitted << ",\"shed\":" << St.Shed
     << ",\"cancelled\":" << St.Cancelled
     << ",\"completed\":" << St.Completed
     << ",\"coalesced\":" << St.Coalesced
     << ",\"serial\":" << Svc.statusJson() << "}";
  return OS.str();
}
