//===- service/AsyncSynthesisService.cpp - Pooled query scheduler ---------===//

#include "service/AsyncSynthesisService.h"

#include "obs/HttpEndpoint.h"
#include "obs/Metrics.h"
#include "obs/QueryLog.h"
#include "obs/Trace.h"

#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

using namespace dggt;

namespace {

/// Async-layer instruments, resolved once (registry references are
/// stable for the process lifetime).
struct AsyncInstruments {
  obs::Gauge &QueueDepth;
  obs::Counter &Submitted, &Shed, &Cancelled;
  obs::Histogram &QueueWaitMs;

  static AsyncInstruments &get() {
    static AsyncInstruments I{
        obs::registry().gauge("dggt_async_queue_depth"),
        obs::registry().counter("dggt_async_submitted_total"),
        obs::registry().counter("dggt_async_shed_total"),
        obs::registry().counter("dggt_async_cancelled_total"),
        obs::registry().histogram("dggt_async_queue_wait_ms"),
    };
    return I;
  }
};

/// Load-controller instruments: the decision trail a dashboard watches
/// to see the knobs move.
struct LoadInstruments {
  obs::Gauge &QueueCap, &CoalesceBatch, &WaitP95Ms, &GatedDomains;
  obs::Counter &Ticks, &CapGrows, &CapShrinks, &GateRejected;

  static LoadInstruments &get() {
    static LoadInstruments I{
        obs::registry().gauge("dggt_load_queue_cap"),
        obs::registry().gauge("dggt_load_coalesce_batch"),
        obs::registry().gauge("dggt_load_wait_p95_ms"),
        obs::registry().gauge("dggt_load_gated_domains"),
        obs::registry().counter("dggt_load_ticks_total"),
        obs::registry().counter("dggt_load_cap_grow_total"),
        obs::registry().counter("dggt_load_cap_shrink_total"),
        obs::registry().counter("dggt_load_gate_rejected_total"),
    };
    return I;
  }
};

ServiceReport immediateReport(ServiceStatus St) {
  ServiceReport Rep;
  Rep.St = St;
  return Rep;
}

/// Emits the wide-event query-log record for a query this layer owns
/// (no router above claimed it) and settles the trace's tail-sampling
/// decision. Called *after* the completion callback, so by the time the
/// buffered spans flush the endpoint's root span is already among them.
/// finishQueryTrace runs unconditionally — the trace buffer must be
/// settled exactly once per query — while the record itself is gated on
/// the global metrics switch like every other instrument.
void recordOwnedQuery(const obs::QueryContext &Ctx, std::string_view Domain,
                      std::string_view Query, const ServiceReport &Rep,
                      const char *Gate, uint64_t BudgetMs) {
  double TotalMs = Rep.TotalSeconds * 1000.0;
  bool Kept = obs::finishQueryTrace(Ctx, TotalMs, httpStatusFor(Rep.St) < 400);
  if (!obs::metricsEnabled())
    return;
  obs::QueryLogRecord R;
  R.TraceId = Ctx.traceIdHex();
  R.Domain = std::string(Domain);
  R.Query = obs::sanitizeQueryText(Query);
  R.Outcome = std::string(serviceStatusName(Rep.St));
  if (Rep.AnsweredBy)
    R.Rung = std::string(rungName(*Rep.AnsweredBy));
  R.Gate = Gate;
  R.Attempts = Rep.Attempts.size();
  for (const RungAttempt &A : Rep.Attempts)
    if (A.Try > 0)
      ++R.Retries;
  R.QueueWaitMs = Rep.QueueWaitMs;
  for (int I = 0; I < 4; ++I)
    R.StageMs[I] = Rep.StageMs[I];
  R.TotalMs = TotalMs;
  R.PathCacheHit = Rep.PathCacheHit;
  R.WordCacheHit = Rep.WordCacheHit;
  R.Cost = Rep.Cost;
  R.BudgetMs = BudgetMs;
  R.TraceKept = Kept;
  obs::queryLog().record(std::move(R));
}

} // namespace

AsyncSynthesisService::AsyncSynthesisService(AsyncOptions O)
    : Opts(O), Svc(std::move(O.Service)),
      Pool(ThreadPool::Options{Opts.Workers, Opts.QueueCap,
                               Opts.CoalesceBatch, Opts.Clock}) {
  if (Opts.LoadControl.Enabled)
    Controller = std::make_unique<LoadController>(
        Opts.LoadControl, Opts.QueueCap, Opts.CoalesceBatch, Opts.Clock);
  // Upgrade the endpoint's /statusz to the async view (queue depth, shed
  // counts) and its health to the drain-aware answer, and register as
  // the POST /v1/synthesize engine: the data plane parks the connection
  // and we answer through the deferred-reply callback when the worker
  // finishes.
  if (obs::HttpEndpoint *Ep = Svc.endpoint()) {
    StatusReg = Ep->setStatusProvider([this] { return statusJson(); });
    HealthReg = Ep->setHealthProvider([this] {
      obs::HealthStatus St = Svc.healthStatus();
      if (draining()) {
        St.Ready = false;
        St.Detail = St.Detail.empty() ? "draining" : St.Detail + "; draining";
      }
      return St;
    });
    SynthesizeReg = Ep->setSynthesizeProvider(
        [this](const obs::SynthesizeRequest &Q,
               obs::HttpEndpoint::SynthesizeReply Reply) {
          SubmitOptions SO;
          SO.BudgetMs = Q.BudgetMs;
          SO.Ctx = Q.Ctx;
          submit(Q.Domain, Q.Query, SO,
                 [Reply = std::move(Reply),
                  Domain = Q.Domain](const ServiceReport &Rep) {
                   obs::SynthesizeResponse R;
                   R.Code = httpStatusFor(Rep.St);
                   // Shed and transient unavailability are the client's
                   // cue to retry (or the front tier's, which owns the
                   // retry budget).
                   if (R.Code == 429 || R.Code == 503)
                     R.RetryAfterSeconds = 1;
                   R.Body = serviceReportJson(Rep, Domain);
                   Reply(std::move(R));
                 });
        });
  }
}

AsyncSynthesisService::~AsyncSynthesisService() {
  // Drop our providers before the pool (and then Svc) shut down; the
  // token-matched clears synchronize with any in-flight render and are
  // no-ops if a newer owner has replaced the registrations.
  if (obs::HttpEndpoint *Ep = Svc.endpoint()) {
    Ep->clearStatusProvider(StatusReg);
    Ep->clearHealthProvider(HealthReg);
    Ep->clearSynthesizeProvider(SynthesizeReg);
  }
}

void AsyncSynthesisService::beginDrain(uint64_t GraceMs) {
  Budget::Clock::time_point Deadline =
      clockNow(Opts.Clock) + std::chrono::milliseconds(GraceMs);
  DrainDeadlineTicks.store(Deadline.time_since_epoch().count(),
                           std::memory_order_release);
  DrainFlag.store(true, std::memory_order_release);
}

void AsyncSynthesisService::addDomain(const Domain &D) {
  Svc.addDomain(D);
  auto DL = std::make_unique<DomainLoad>();
  const ServiceOptions &Resolved = Svc.optionsFor(D.name());
  DL->BudgetMs = Resolved.TotalBudgetMs;
  DL->GateEnabled = Resolved.AdmissionGate;
  // The controller's wait waters scale against the tightest registered
  // budget: the domain with the least headroom is the one a congested
  // queue dooms first.
  if (DL->BudgetMs != 0 && (RefBudgetMs == 0 || DL->BudgetMs < RefBudgetMs))
    RefBudgetMs = DL->BudgetMs;
  Loads[D.name()] = std::move(DL);
}

AsyncSynthesisService::DomainLoad *
AsyncSynthesisService::loadFor(std::string_view DomainName) {
  auto It = Loads.find(DomainName);
  return It == Loads.end() ? nullptr : It->second.get();
}

LoadSample AsyncSynthesisService::sampleLoad() {
  LoadSample S;
  {
    std::lock_guard<std::mutex> L(SampleM);
    LoadController::sampleWaitInterval(QueueWaitMs, PrevWaitCounts, S);
  }
  S.QueueDepth = Pool.queueDepth();
  S.ShedTotal = Pool.stats().Rejected;
  S.CancelledTotal = Cancelled.load(std::memory_order_relaxed);
  for (const auto &[Name, DL] : Loads)
    if (Svc.breakerState(Name) == SynthesisService::BreakerState::Open)
      ++S.OpenBreakers;
  S.BudgetMs = RefBudgetMs;

  // Little's-law lead indicator. The interval histogram only shows the
  // waits of tasks that already *finished* waiting, which lags a fast
  // congestion onset by a full queue's worth of time — exactly the
  // tasks the gate exists to reject. Current depth times the measured
  // per-task service p50, divided by the real parallelism, predicts the
  // wait a task admitted now would see; report whichever signal is
  // worse so the gate reacts to onsets the histogram has not seen yet.
  if (S.QueueDepth > 0) {
    std::vector<uint64_t> SvcCounts;
    for (const auto &[Name, DL] : Loads) {
      std::vector<uint64_t> C = DL->ServiceMs.bucketSnapshot();
      if (SvcCounts.empty())
        SvcCounts.assign(C.size(), 0);
      for (size_t I = 0; I < C.size(); ++I)
        SvcCounts[I] += C[I];
    }
    double SvcP50 = obs::percentileFromCounts(
        obs::Histogram::defaultLatencyBucketsMs(), SvcCounts, 50.0);
    unsigned HW = std::thread::hardware_concurrency();
    unsigned Par = std::max(1u, HW ? std::min(Pool.workers(), HW)
                                   : Pool.workers());
    double LeadMs =
        static_cast<double>(S.QueueDepth) * SvcP50 / static_cast<double>(Par);
    S.WaitP95Ms = std::max(S.WaitP95Ms, LeadMs);
  }
  return S;
}

std::future<ServiceReport>
AsyncSynthesisService::submit(std::string_view DomainName,
                              std::string_view QueryText) {
  return submit(DomainName, QueryText, SubmitOptions(), nullptr);
}

std::future<ServiceReport>
AsyncSynthesisService::submit(std::string_view DomainName,
                              std::string_view QueryText,
                              const SubmitOptions &SO, Callback Done) {
  AsyncInstruments &M = AsyncInstruments::get();

  // Claim the query-log record. An invalid context means this submit
  // *is* the query's root (direct API use, nothing above us), so mint
  // one; a valid-but-unrecorded context (endpoint straight to this
  // worker) is claimed here; one already marked Recorded belongs to the
  // router, which logs the whole fan-out as a single record. Every path
  // below — including the immediate rejections — emits exactly one
  // record when this layer owns it.
  obs::QueryContext Ctx = SO.Ctx;
  if (!Ctx.valid())
    Ctx = obs::startQueryContext();
  const bool OwnsRecord = !Ctx.Recorded;
  Ctx.Recorded = true;

  // Immediate rejections satisfy the future *and* the callback before
  // returning, so a callback-driven caller (router, data plane) never
  // needs to also poll the future.
  auto Reject = [&](ServiceStatus St, const char *Gate) {
    std::promise<ServiceReport> Immediate;
    ServiceReport Rep = immediateReport(St);
    if (Done)
      Done(Rep);
    if (OwnsRecord)
      recordOwnedQuery(Ctx, DomainName, QueryText, Rep, Gate, SO.BudgetMs);
    Immediate.set_value(std::move(Rep));
    return Immediate.get_future();
  };

  // Resolve the domain up front: an unknown name fails immediately (no
  // queue slot burned), and a known one pins its deadline *now* so queue
  // wait counts against the query's own budget.
  DomainLoad *DL = loadFor(DomainName);
  if (!DL || !Svc.hasDomain(DomainName))
    return Reject(ServiceStatus::UnknownDomain, "unknown-domain");

  // Draining: stop admission first, before any controller bookkeeping —
  // a departing worker must not accept work it may have to cancel.
  if (draining()) {
    DrainRejected.fetch_add(1, std::memory_order_relaxed);
    return Reject(ServiceStatus::Draining, "drain");
  }

  // Controller tick before admission, so this submission is judged
  // against fresh targets (at most one submitter per interval pays for
  // the sampling; everyone else costs one atomic load).
  if (Controller) {
    if (auto D = Controller->maybeTick([this] { return sampleLoad(); })) {
      Pool.setQueueCap(D->QueueCap);
      Pool.setCoalesceBatch(D->CoalesceBatch);
      if (obs::metricsEnabled()) {
        LoadInstruments &LM = LoadInstruments::get();
        LM.QueueCap.set(static_cast<int64_t>(D->QueueCap));
        LM.CoalesceBatch.set(D->CoalesceBatch);
        LM.WaitP95Ms.set(static_cast<int64_t>(Controller->waitP95Ms()));
        int64_t Gated = 0;
        for (const auto &[Name, L] : Loads)
          if (L->Gated.load(std::memory_order_relaxed))
            ++Gated;
        LM.GatedDomains.set(Gated);
        LM.Ticks.inc();
        if (D->CapGrew)
          LM.CapGrows.inc();
        if (D->CapShrank)
          LM.CapShrinks.inc();
      }
    }
  }

  // Deadline-aware admission: when the measured p95 queue wait plus the
  // domain's tail service time (GateServicePercentile, default p90 — p50
  // was optimistic for heavy-tailed domains) already exceeds the query's
  // budget, the queue would only carry it to a cancellation — reject now
  // instead.
  if (Controller && DL->GateEnabled &&
      !Controller->admit(
          DL->ServiceMs.percentile(Opts.LoadControl.GateServicePercentile),
          DL->BudgetMs, DL->Gated)) {
    GateRejected.fetch_add(1, std::memory_order_relaxed);
    if (obs::metricsEnabled()) {
      LoadInstruments::get().GateRejected.inc();
      obs::registry()
          .counter("dggt_service_queries_total",
                   {{"domain", std::string(DomainName)},
                    {"status",
                     std::string(serviceStatusName(ServiceStatus::Overloaded))}})
          .inc();
    }
    return Reject(ServiceStatus::Overloaded, "gate");
  }

  auto Task = std::make_shared<std::packaged_task<ServiceReport()>>();

  uint64_t BudgetMs = SO.BudgetMs != 0 ? SO.BudgetMs : DL->BudgetMs;
  Budget::Clock::time_point Deadline =
      clockNow(Opts.Clock) + std::chrono::milliseconds(BudgetMs);
  bool Limited = BudgetMs != 0;
  Budget::Clock::time_point Enqueued = clockNow(Opts.Clock);

  std::string Domain(DomainName);
  std::string Query(QueryText);
  *Task = std::packaged_task<ServiceReport()>(
      [this, DL, Domain = std::move(Domain), Query = std::move(Query),
       Deadline, Limited, Enqueued, Cancel = SO.Cancel, Done, Ctx, OwnsRecord,
       BudgetMs]() -> ServiceReport {
        AsyncInstruments &M = AsyncInstruments::get();
        double WaitMs = std::chrono::duration<double, std::milli>(
                            clockNow(Opts.Clock) - Enqueued)
                            .count();
        M.QueueDepth.set(static_cast<int64_t>(Pool.queueDepth()));
        QueueWaitMs.observe(WaitMs);
        if (obs::metricsEnabled())
          M.QueueWaitMs.observe(WaitMs);

        // Adopt the query's trace context for everything this worker
        // runs: async.task and the whole ladder/pipeline span tree
        // parent under the submitting query instead of starting orphan
        // roots on this pool thread.
        obs::ScopedQueryContext CtxGuard(Ctx);

        auto Finish = [&](ServiceReport Rep) {
          Rep.QueueWaitMs = WaitMs;
          if (Done)
            Done(Rep);
          if (OwnsRecord)
            recordOwnedQuery(Ctx, Domain, Query, Rep, "admitted", BudgetMs);
          return Rep;
        };

        // Caller-side cancellation (a hedge's loser): drop before any
        // ladder work.
        if (Cancel && Cancel->load(std::memory_order_acquire)) {
          Cancelled.fetch_add(1, std::memory_order_relaxed);
          M.Cancelled.inc();
          ServiceReport Rep = immediateReport(ServiceStatus::Cancelled);
          Rep.TotalSeconds = WaitMs / 1000.0;
          return Finish(std::move(Rep));
        }

        // Cancellation of queued-past-deadline work: the budget the
        // ladder would get is already spent, so report the miss without
        // running anything. The empty attempt trail distinguishes a
        // cancelled query from one that timed out mid-ladder.
        if (Limited && clockNow(Opts.Clock) >= Deadline) {
          Cancelled.fetch_add(1, std::memory_order_relaxed);
          M.Cancelled.inc();
          ServiceReport Rep = immediateReport(ServiceStatus::DeadlineExceeded);
          Rep.TotalSeconds = WaitMs / 1000.0;
          return Finish(std::move(Rep));
        }

        // Drain-deadline clipping: work dequeued past the drain deadline
        // is cancelled (the worker is leaving; a retrying caller moves
        // the query elsewhere), work inside the window runs with its
        // budget cut to the deadline so the drain actually converges.
        Budget::Clock::time_point Eff = Deadline;
        bool Lim = Limited;
        int64_t DD = DrainDeadlineTicks.load(std::memory_order_acquire);
        if (DrainFlag.load(std::memory_order_acquire) && DD != 0) {
          Budget::Clock::time_point DTp{Budget::Clock::duration(DD)};
          if (clockNow(Opts.Clock) >= DTp) {
            Cancelled.fetch_add(1, std::memory_order_relaxed);
            M.Cancelled.inc();
            ServiceReport Rep = immediateReport(ServiceStatus::Cancelled);
            Rep.TotalSeconds = WaitMs / 1000.0;
            return Finish(std::move(Rep));
          }
          if (!Lim || DTp < Eff) {
            Eff = DTp;
            Lim = true;
          }
        }

        obs::ScopedSpan Span("async.task");
        if (Span.active()) {
          Span.attr("domain", Domain);
          Span.attr("queue_wait_ms", WaitMs);
        }
        Budget Total = Lim ? Budget::until(Eff, Opts.Clock) : Budget();
        ServiceReport Rep = Svc.query(Domain, Query, Total);
        // Feed the gate's service-time prior from real runs only (a
        // cancelled task's 0-second "service" would teach the gate that
        // doomed work is fast).
        DL->ServiceMs.observe(Rep.TotalSeconds * 1000.0);
        Completed.fetch_add(1, std::memory_order_relaxed);
        return Finish(std::move(Rep));
      });
  std::future<ServiceReport> Fut = Task->get_future();

  if (!Pool.trySubmit(DomainName, [Task] { (*Task)(); })) {
    M.Shed.inc();
    if (obs::metricsEnabled())
      obs::registry()
          .counter("dggt_service_queries_total",
                   {{"domain", std::string(DomainName)},
                    {"status",
                     std::string(serviceStatusName(ServiceStatus::Overloaded))}})
          .inc();
    // The packaged task was never run (its copy of Done with it), so
    // satisfy the caller through the immediate-rejection path.
    return Reject(ServiceStatus::Overloaded, "shed");
  }

  M.Submitted.inc();
  M.QueueDepth.set(static_cast<int64_t>(Pool.queueDepth()));
  return Fut;
}

AsyncStats AsyncSynthesisService::stats() const {
  ThreadPool::Stats P = Pool.stats();
  AsyncStats St;
  St.Submitted = P.Submitted;
  St.Shed = P.Rejected;
  St.GateRejected = GateRejected.load(std::memory_order_relaxed);
  St.Cancelled = Cancelled.load(std::memory_order_relaxed);
  St.Completed = Completed.load(std::memory_order_relaxed);
  St.Coalesced = P.Coalesced;
  St.DrainRejected = DrainRejected.load(std::memory_order_relaxed);
  return St;
}

std::string AsyncSynthesisService::statusJson() const {
  AsyncStats St = stats();
  std::ostringstream OS;
  // queue_cap / coalesce_batch report the *effective* limits: equal to
  // the configured statics until the load controller moves them.
  OS << "{\"workers\":" << workers() << ",\"queue_depth\":" << queueDepth()
     << ",\"queue_cap\":" << queueCap()
     << ",\"running\":" << runningTasks()
     << ",\"coalesce_batch\":" << coalesceBatch()
     << ",\"submitted\":" << St.Submitted << ",\"shed\":" << St.Shed
     << ",\"gate_rejected\":" << St.GateRejected
     << ",\"cancelled\":" << St.Cancelled
     << ",\"completed\":" << St.Completed
     << ",\"coalesced\":" << St.Coalesced
     << ",\"draining\":" << (draining() ? "true" : "false")
     << ",\"drain_rejected\":" << St.DrainRejected << ",\"load_control\":{";
  if (Controller) {
    LoadController::Stats CS = Controller->stats();
    size_t Gated = 0;
    for (const auto &[Name, L] : Loads)
      if (L->Gated.load(std::memory_order_relaxed))
        ++Gated;
    OS << "\"enabled\":true,\"wait_p95_ms\":" << Controller->waitP95Ms()
       << ",\"wait_p50_ms\":" << Controller->waitP50Ms()
       << ",\"ticks\":" << CS.Ticks << ",\"cap_grows\":" << CS.CapGrows
       << ",\"cap_shrinks\":" << CS.CapShrinks
       << ",\"gated_domains\":" << Gated;
  } else {
    OS << "\"enabled\":false";
  }
  OS << "},\"serial\":" << Svc.statusJson() << "}";
  return OS.str();
}
