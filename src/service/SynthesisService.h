//===- service/SynthesisService.h - Resilient query front door ---*- C++ -*-===//
///
/// \file
/// The production front door of the synthesis library: a thread-safe
/// service that owns the registered domains and runs every query through
/// a degradation ladder under one total deadline, so a pathological query
/// degrades predictably instead of eating the whole interactive budget
/// (the paper's Section VII-B1 discipline, promoted from per-run harness
/// code to a service contract). The ladder rungs are:
///
///   1. DGGT at the domain's full PathSearchLimits,
///   2. DGGT at tightened limits (smaller path/visit caps: less complete,
///      but bounded work),
///   3. the HISyn baseline (algorithm-diverse: a DGGT-specific failure
///      does not take the service down),
///   4. a structured error — never a crash, never an unbounded overrun.
///
/// Each rung gets a child budget split off the query's total budget
/// (Budget::child), transient faults are retried with bounded backoff,
/// and a per-domain circuit breaker sheds load after consecutive
/// deadline misses, half-opening on a probe after a cooldown (the
/// retry/outlier patterns of proxy data planes, scaled to one process).
/// The returned ServiceReport carries the full attempt trail for
/// observability. See DESIGN.md "Failure model and degradation ladder".
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_SERVICE_SYNTHESISSERVICE_H
#define DGGT_SERVICE_SYNTHESISSERVICE_H

#include "domains/Domain.h"
#include "obs/Cost.h"
#include "obs/Trace.h"
#include "synth/Synthesizer.h"
#include "synth/dggt/DggtSynthesizer.h"
#include "synth/hisyn/HisynSynthesizer.h"

#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dggt {

class ApiCandidateCache;
class PathCache;

namespace obs {
class HttpEndpoint;
struct HealthStatus;
} // namespace obs

/// Terminal status of one service query.
enum class ServiceStatus {
  Ok,               ///< Some rung produced a codelet.
  NoCandidates,     ///< A word matched no API; no rung can remap words,
                    ///< so the query fails fast before the ladder runs.
  NoAnswer,         ///< Every rung completed and none found a valid tree
                    ///< (includes a rung that exhausted transient-fault
                    ///< retries).
  DeadlineExceeded, ///< The total budget ran out, or the final rung
                    ///< itself timed out.
  CircuitOpen,      ///< Admission control rejected the query outright.
  UnknownDomain,    ///< No domain registered under that name.
  Overloaded,       ///< Shed before running: the async layer's submission
                    ///< queue was full (backpressure).
  Cancelled,        ///< Cancelled by the caller (a hedged sibling won, or
                    ///< a drain deadline overtook the queued work) before
                    ///< the ladder produced an answer.
  Draining,         ///< Rejected at submit: the worker is draining and no
                    ///< longer admits queries (retry on another shard).
};

/// Short name of \p St ("ok", "deadline-exceeded", ...).
std::string_view serviceStatusName(ServiceStatus St);

/// The data-plane failure matrix: the HTTP status code POST
/// /v1/synthesize answers for a query that ended in \p St. Terminal
/// outcomes (Ok, NoAnswer, NoCandidates) are 200 — the JSON body carries
/// the synthesis status; transport-level rejections map to retryable
/// codes (429/503/504). See DESIGN.md §13.
int httpStatusFor(ServiceStatus St);

/// Rungs of the degradation ladder, tried in declaration order.
enum class ServiceRung {
  DggtFull,  ///< DGGT at the domain's full limits.
  DggtTight, ///< DGGT at ServiceOptions::TightLimits.
  Hisyn,     ///< Exhaustive baseline fallback.
};

/// Short name of \p R ("dggt-full", "dggt-tight", "hisyn").
std::string_view rungName(ServiceRung R);

/// How one rung attempt ended.
enum class AttemptStatus {
  Success,
  Timeout,        ///< The rung's child budget expired.
  NoCandidates,
  NoValidTree,
  TransientFault, ///< Injected transient failure (faults::ServiceTransient);
                  ///< retried with backoff up to MaxRetriesPerRung.
};

/// Short name of \p St ("success", "transient-fault", ...).
std::string_view attemptStatusName(AttemptStatus St);

/// One entry of the attempt trail.
struct RungAttempt {
  ServiceRung Rung = ServiceRung::DggtFull;
  AttemptStatus St = AttemptStatus::NoValidTree;
  double Seconds = 0; ///< Wall clock of this attempt alone.
  unsigned Try = 0;   ///< 0 on the first attempt at the rung, 1+ retries.
  /// Total budget left (ms) when this attempt *finished* — the headroom
  /// the remaining rungs had to work with. Reconstructs the budget decay
  /// from the trail alone.
  uint64_t RemainingMs = 0;
};

/// Everything the service reports about one query.
struct ServiceReport {
  ServiceStatus St = ServiceStatus::NoAnswer;
  /// The winning rung's synthesis result (meaningful when ok()).
  SynthesisResult Result;
  /// Which rung answered (unset unless ok()).
  std::optional<ServiceRung> AnsweredBy;
  /// Chronological attempt trail across rungs and retries.
  std::vector<RungAttempt> Attempts;
  /// Total wall clock including preparation and backoff sleeps.
  double TotalSeconds = 0;

  /// Submit-to-start queue wait (ms); stamped by the async layer, 0 for
  /// direct query() calls.
  double QueueWaitMs = 0;
  /// Winning attempt's pipeline stage latencies in the fixed order
  /// {parse, prune, word_to_api, edge_to_path} (obs::QueryStageNames).
  double StageMs[4] = {0, 0, 0, 0};
  /// Best-effort shared-cache attribution of the winning attempt (see
  /// PreparedQuery).
  bool PathCacheHit = false;
  bool WordCacheHit = false;
  /// DP-core cost vector accumulated while this query ran its pipeline
  /// (DESIGN.md §16). Unpopulated when the query never reached the
  /// pipeline (unknown domain, open breaker).
  obs::CostCounters Cost;

  bool ok() const { return St == ServiceStatus::Ok; }
};

/// Serializes \p Rep as the /v1/synthesize response body: status,
/// codelet (when ok), the chronological attempt trail with per-rung
/// latency and remaining-budget metadata, and total latency. \p Domain
/// is echoed back for log correlation.
std::string serviceReportJson(const ServiceReport &Rep,
                              std::string_view Domain);

/// Service tuning knobs.
struct ServiceOptions {
  /// Per-domain overrides of the base options. Unset fields inherit the
  /// base value; resolution happens once at addDomain() time.
  struct DomainOverrides {
    std::optional<uint64_t> TotalBudgetMs;
    std::optional<double> RungBudgetFraction;
    std::optional<unsigned> MaxRetriesPerRung;
    std::optional<uint64_t> RetryBackoffMs;
    std::optional<PathSearchLimits> TightLimits;
    std::optional<bool> EnableHisynFallback;
    std::optional<unsigned> BreakerTripThreshold;
    std::optional<uint64_t> BreakerCooldownMs;
    std::optional<uint64_t> PathCacheBytes;
    std::optional<uint64_t> WordCacheBytes;
    std::optional<bool> AdmissionGate;
  };

  /// Total per-query deadline (the interactive budget).
  uint64_t TotalBudgetMs = 2000;
  /// Share of the *remaining* budget granted to each non-final rung; the
  /// final rung always gets everything left.
  double RungBudgetFraction = 0.5;
  /// Retries per rung for transient faults (0 disables retrying).
  unsigned MaxRetriesPerRung = 1;
  /// Backoff before retry k is RetryBackoffMs << (k-1), capped by the
  /// remaining total budget.
  uint64_t RetryBackoffMs = 2;
  /// Tightened limits for the second rung.
  PathSearchLimits TightLimits{/*MaxPathNodes=*/12, /*MaxPaths=*/64,
                               /*MaxVisits=*/20000};
  /// Whether the HISyn rung is in the ladder.
  bool EnableHisynFallback = true;
  /// Consecutive deadline-exceeded queries that trip the breaker.
  unsigned BreakerTripThreshold = 3;
  /// How long the breaker stays open before admitting a half-open probe.
  uint64_t BreakerCooldownMs = 250;
  /// Byte budget of the per-domain path-search memo (see PathCache);
  /// 0 disables it. Hits are bit-identical to re-searching, so this is
  /// purely a speed/memory trade.
  uint64_t PathCacheBytes = 4ull << 20;
  /// Byte budget of the per-domain WordToAPI candidate memo; 0 disables.
  uint64_t WordCacheBytes = 1ull << 20;
  /// Whether the async layer's deadline-aware admission gate may reject
  /// this domain's queries at submit (see service/LoadController.h; only
  /// consulted when the load controller is enabled). A latency-tolerant
  /// batch domain can opt out per-domain and queue through spikes.
  bool AdmissionGate = true;

  /// Per-domain overrides, keyed by domain name. A latency-tolerant batch
  /// domain can run with a bigger budget and no HISyn fallback while an
  /// interactive domain keeps the tight defaults, all in one service.
  std::map<std::string, DomainOverrides, std::less<>> Overrides;

  /// Turns the global metrics switch on at service construction (the
  /// DGGT_METRICS environment spec can do the same without a rebuild; see
  /// obs/Export.h).
  bool EnableMetrics = false;
  /// Trace sink installed at service construction (e.g. an
  /// obs::JsonLinesTraceSink). Installing a sink enables tracing.
  std::shared_ptr<obs::TraceSink> Trace;
  /// When set, the service owns a live introspection endpoint on
  /// 127.0.0.1:<HttpPort> (0 = ephemeral; see obs/HttpEndpoint.h) and
  /// registers its health/status providers on it. Implies metrics
  /// collection, so /metrics has content. The `http:PORT` DGGT_METRICS
  /// entry is the no-rebuild equivalent (a process-global endpoint the
  /// service also registers on).
  std::optional<uint16_t> HttpPort;

  /// Returns a copy with the overrides for \p DomainName applied (base
  /// values where no override is set).
  ServiceOptions resolvedFor(std::string_view DomainName) const;
};

/// Thread-safe synthesis front door over one or more domains.
///
/// query() may be called concurrently from any number of threads once
/// all domains are registered; addDomain() is part of single-threaded
/// setup and must not race with query().
class SynthesisService {
public:
  enum class BreakerState { Closed, Open, HalfOpen };

  explicit SynthesisService(ServiceOptions Opts = {});
  ~SynthesisService();

  SynthesisService(const SynthesisService &) = delete;
  SynthesisService &operator=(const SynthesisService &) = delete;

  /// Registers \p D under D.name(). The domain must outlive the service.
  void addDomain(const Domain &D);

  /// True if a domain is registered under \p DomainName.
  bool hasDomain(std::string_view DomainName) const {
    return findDomain(DomainName) != nullptr;
  }

  /// Runs \p QueryText through the ladder against domain \p DomainName
  /// under the domain's own TotalBudgetMs.
  ServiceReport query(std::string_view DomainName,
                      std::string_view QueryText);

  /// Same, under a caller-supplied total budget. The async layer uses
  /// this to fix a query's deadline at *submission* time
  /// (Budget::until), so time spent queued counts against the budget.
  ServiceReport query(std::string_view DomainName, std::string_view QueryText,
                      Budget Total);

  /// The per-domain caches (null for unknown domains or when disabled by
  /// a zero byte budget). Exposed for hit-rate reporting (bench, tests)
  /// and for explicit invalidation after a domain's grammar or document
  /// changes.
  PathCache *pathCache(std::string_view DomainName) const;
  ApiCandidateCache *wordCache(std::string_view DomainName) const;

  /// Current breaker state of \p DomainName (Closed for unknown names).
  BreakerState breakerState(std::string_view DomainName) const;

  /// Registered domain names, sorted (the map order).
  std::vector<std::string> domainNames() const;

  /// One JSON object describing live service state: per-domain breaker
  /// rung and cache hit rates / byte usage. The introspection endpoint's
  /// /statusz is built from this (AsyncSynthesisService::statusJson()
  /// wraps it with queue and shed state).
  std::string statusJson() const;

  /// Liveness/readiness as /healthz//readyz report it: Ready once text
  /// warmup completed and a domain is registered, Healthy while no
  /// domain breaker is open.
  obs::HealthStatus healthStatus() const;

  /// The introspection endpoint this service registered its providers
  /// on: the owned one (ServiceOptions::HttpPort), else the global
  /// spec-configured one, else null.
  obs::HttpEndpoint *endpoint() const { return Endpoint.get(); }

  const ServiceOptions &options() const { return Opts; }

  /// Effective options for \p DomainName: the base options with the
  /// domain's overrides applied. Returns the base options for unknown
  /// names.
  const ServiceOptions &optionsFor(std::string_view DomainName) const;

private:
  struct DomainState;

  DomainState *findDomain(std::string_view Name) const;

  ServiceOptions Opts;
  DggtSynthesizer Dggt;
  HisynSynthesizer Hisyn;
  /// Guards the map itself (addDomain writes; queries and the endpoint
  /// thread read). DomainState objects are stable once inserted — the
  /// shared lock is only held for the lookup, never across a query.
  mutable std::shared_mutex DomainsM;
  std::map<std::string, std::unique_ptr<DomainState>, std::less<>> Domains;
  /// Endpoint the providers were registered on (kept alive; cleared in
  /// the destructor so the server thread never calls a dead service).
  std::shared_ptr<obs::HttpEndpoint> Endpoint;
  /// Registration tokens for the providers above; the destructor's
  /// token-matched clear is a no-op if a newer owner replaced them.
  uint64_t HealthReg = 0;
  uint64_t StatusReg = 0;
};

/// Short name of \p St ("closed", "open", "half-open").
std::string_view breakerStateName(SynthesisService::BreakerState St);

} // namespace dggt

#endif // DGGT_SERVICE_SYNTHESISSERVICE_H
