//===- service/AsyncSynthesisService.h - Pooled query scheduler -*- C++ -*-===//
///
/// \file
/// The concurrency layer over SynthesisService: submit() enqueues a
/// query onto a bounded, per-domain-keyed worker pool and returns a
/// std::future<ServiceReport> immediately. The layer adds exactly three
/// behaviours on top of the serial service — everything else (ladder,
/// breaker, budgets, caches) stays in SynthesisService, so an async
/// result is bit-identical to the serial result of the same query:
///
///   1. *Backpressure.* The submission queue holds at most QueueCap
///      tasks; submit() on a full queue sheds immediately with an
///      Overloaded report (a ready future, never a blocked caller).
///
///   2. *Submission-time deadlines.* A query's TotalBudgetMs deadline is
///      fixed when it is accepted, not when a worker picks it up, so
///      queue wait burns the query's own budget. A worker that dequeues
///      a task already past its deadline cancels it without running the
///      ladder (DeadlineExceeded, empty attempt trail) — under overload
///      the pool drains stale work at memcpy speed instead of running
///      doomed queries.
///
///   3. *Domain coalescing.* Tasks are keyed by domain, and the pool
///      prefers to keep a worker on one domain's queue (see ThreadPool),
///      so consecutive queries share that domain's warm PathCache /
///      ApiCandidateCache working set.
///
/// Destruction drains: every accepted future completes before the
/// destructor returns. The wrapped SynthesisService is owned and can be
/// inspected (service()) for breaker state and cache stats.
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_SERVICE_ASYNCSYNTHESISSERVICE_H
#define DGGT_SERVICE_ASYNCSYNTHESISSERVICE_H

#include "service/SynthesisService.h"
#include "support/ThreadPool.h"

#include <future>

namespace dggt {

/// Tuning of the async layer. Service carries the wrapped service's own
/// options (budgets, ladder, caches).
struct AsyncOptions {
  ServiceOptions Service;
  /// Worker threads (0 = hardware concurrency).
  unsigned Workers = 4;
  /// Queued-but-not-started cap; a full queue sheds new submissions with
  /// ServiceStatus::Overloaded. 0 means unbounded (no shedding).
  size_t QueueCap = 256;
  /// Consecutive same-domain tasks a worker runs before rotating.
  unsigned CoalesceBatch = 8;
};

/// Monotonic counters of the async layer (relaxed snapshots).
struct AsyncStats {
  uint64_t Submitted = 0; ///< Accepted onto the queue.
  uint64_t Shed = 0;      ///< Rejected at submit() by the queue cap.
  uint64_t Cancelled = 0; ///< Dequeued already past deadline; not run.
  uint64_t Completed = 0; ///< Futures fulfilled by a worker run.
  uint64_t Coalesced = 0; ///< Tasks run by staying on the same domain.
};

/// Thread-safe asynchronous front door; see file comment.
class AsyncSynthesisService {
public:
  explicit AsyncSynthesisService(AsyncOptions Opts = {});
  /// Drains the queue (every accepted future completes), then joins.
  ~AsyncSynthesisService();

  AsyncSynthesisService(const AsyncSynthesisService &) = delete;
  AsyncSynthesisService &operator=(const AsyncSynthesisService &) = delete;

  /// Registers \p D on the wrapped service. Single-threaded setup only;
  /// must happen before the first submit().
  void addDomain(const Domain &D);

  /// Enqueues the query and returns its future. Always returns a valid
  /// future: on shed (queue full) or unknown domain it is already
  /// satisfied with an Overloaded / UnknownDomain report.
  std::future<ServiceReport> submit(std::string_view DomainName,
                                    std::string_view QueryText);

  /// The wrapped serial service (breaker state, cache stats, options).
  SynthesisService &service() { return Svc; }
  const SynthesisService &service() const { return Svc; }

  /// Tasks accepted but not yet started.
  size_t queueDepth() const { return Pool.queueDepth(); }
  /// Tasks currently executing on the pool.
  size_t runningTasks() const { return Pool.running(); }
  unsigned workers() const { return Pool.workers(); }

  AsyncStats stats() const;

  /// One JSON object for the introspection endpoint's /statusz: queue
  /// depth/cap, worker and shed/cancel counters, wrapped around the
  /// serial service's per-domain status. Registered automatically on
  /// the service's endpoint at construction (replacing the plain
  /// SynthesisService provider with this richer one).
  std::string statusJson() const;

  /// Blocks until every task accepted so far has finished (tests/bench).
  void drain() { Pool.drain(); }

private:
  AsyncOptions Opts;
  SynthesisService Svc;
  ThreadPool Pool;

  std::atomic<uint64_t> Cancelled{0};
  std::atomic<uint64_t> Completed{0};
  /// Token of our /statusz registration on the wrapped service's
  /// endpoint; the destructor's token-matched clear cannot wipe a newer
  /// owner's provider.
  uint64_t StatusReg = 0;
};

} // namespace dggt

#endif // DGGT_SERVICE_ASYNCSYNTHESISSERVICE_H
