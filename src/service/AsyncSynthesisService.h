//===- service/AsyncSynthesisService.h - Pooled query scheduler -*- C++ -*-===//
///
/// \file
/// The concurrency layer over SynthesisService: submit() enqueues a
/// query onto a bounded, per-domain-keyed worker pool and returns a
/// std::future<ServiceReport> immediately. The layer adds exactly three
/// behaviours on top of the serial service — everything else (ladder,
/// breaker, budgets, caches) stays in SynthesisService, so an async
/// result is bit-identical to the serial result of the same query:
///
///   1. *Backpressure.* The submission queue holds at most QueueCap
///      tasks; submit() on a full queue sheds immediately with an
///      Overloaded report (a ready future, never a blocked caller).
///
///   2. *Submission-time deadlines.* A query's TotalBudgetMs deadline is
///      fixed when it is accepted, not when a worker picks it up, so
///      queue wait burns the query's own budget. A worker that dequeues
///      a task already past its deadline cancels it without running the
///      ladder (DeadlineExceeded, empty attempt trail) — under overload
///      the pool drains stale work at memcpy speed instead of running
///      doomed queries.
///
///   3. *Domain coalescing.* Tasks are keyed by domain, and the pool
///      prefers to keep a worker on one domain's queue (see ThreadPool),
///      so consecutive queries share that domain's warm PathCache /
///      ApiCandidateCache working set.
///
/// With AsyncOptions::LoadControl enabled a fourth behaviour appears:
/// *adaptive load control*. A LoadController periodically re-derives the
/// effective queue cap and coalesce batch from the measured queue-wait
/// histogram, and a deadline-aware admission gate rejects a query at
/// submit() (immediate Overloaded) when `p95 queue wait + the domain's
/// p50 service time` already exceeds its budget — failing fast instead
/// of cancelling after the wait. See service/LoadController.h for the
/// control law; off by default, the static knobs then behave exactly as
/// before.
///
/// The layer is also the *network-facing* synthesis engine: at
/// construction it registers a SynthesizeProvider on the wrapped
/// service's introspection endpoint, so POST /v1/synthesize submits
/// here and answers through the endpoint's deferred-reply path (see
/// obs/HttpEndpoint.h). The callback-taking submit() overload carries a
/// per-query budget override and a cooperative cancel token — what the
/// front-tier router uses to cancel a hedged request's loser.
///
/// beginDrain() starts a graceful shutdown window: new submissions are
/// rejected with ServiceStatus::Draining, /readyz flips to 503 so a
/// router stops picking this worker, queued work past the drain
/// deadline is cancelled instead of run, and running work has its
/// budget clipped to the deadline. Destruction still drains fully:
/// every accepted future completes before the destructor returns. The
/// wrapped SynthesisService is owned and can be inspected (service())
/// for breaker state and cache stats.
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_SERVICE_ASYNCSYNTHESISSERVICE_H
#define DGGT_SERVICE_ASYNCSYNTHESISSERVICE_H

#include "service/LoadController.h"
#include "service/SynthesisService.h"
#include "support/ThreadPool.h"

#include <future>
#include <map>

namespace dggt {

/// Tuning of the async layer. Service carries the wrapped service's own
/// options (budgets, ladder, caches).
struct AsyncOptions {
  ServiceOptions Service;
  /// Worker threads (0 = hardware concurrency).
  unsigned Workers = 4;
  /// Queued-but-not-started cap; a full queue sheds new submissions with
  /// ServiceStatus::Overloaded. 0 means unbounded (no shedding). With
  /// the load controller enabled this is the *initial* cap; the live one
  /// adapts (see queueCap()).
  size_t QueueCap = 256;
  /// Consecutive same-domain tasks a worker runs before rotating; the
  /// initial value when the load controller is enabled.
  unsigned CoalesceBatch = 8;
  /// Adaptive load control: derive the effective cap/batch from the
  /// observed queue-wait histogram and gate doomed work at submit (see
  /// service/LoadController.h). Off by default — the static knobs above
  /// then behave exactly as before.
  LoadControlOptions LoadControl;
  /// Time source for deadlines, wait accounting and controller ticks;
  /// null = real steady clock. Tests inject a VirtualClock.
  const ClockSource *Clock = nullptr;
};

/// Monotonic counters of the async layer (relaxed snapshots).
struct AsyncStats {
  uint64_t Submitted = 0;    ///< Accepted onto the queue.
  uint64_t Shed = 0;         ///< Rejected at submit() by the queue cap.
  uint64_t GateRejected = 0; ///< Rejected at submit() by the admission
                             ///< gate (predicted deadline miss).
  uint64_t Cancelled = 0;    ///< Dequeued past deadline, past the drain
                             ///< deadline, or with a set cancel token;
                             ///< not run.
  uint64_t Completed = 0;    ///< Futures fulfilled by a worker run.
  uint64_t Coalesced = 0;    ///< Tasks run by staying on the same domain.
  uint64_t DrainRejected = 0; ///< Rejected at submit() while draining.
};

/// Per-submission knobs of the callback-taking submit() overload.
struct SubmitOptions {
  /// Per-query total budget; 0 = the domain's configured TotalBudgetMs.
  /// The data plane threads the request's budget_ms through here.
  uint64_t BudgetMs = 0;
  /// Cooperative cancellation: when set before the worker dequeues the
  /// task, the query reports ServiceStatus::Cancelled without running
  /// the ladder (best effort — a query already running completes). The
  /// router cancels a hedge's loser through this.
  std::shared_ptr<std::atomic<bool>> Cancel;
  /// Trace context of the originating query (HttpEndpoint → Router →
  /// here). The worker adopts it so `async.task` and every pipeline span
  /// parent under the submitting query's span instead of starting an
  /// orphan tree. Invalid (default) = this submit *is* the query's root:
  /// the layer mints a context and owns the query-log record; a valid
  /// context with Ctx.Recorded unset is claimed here, and one already
  /// marked Recorded is logged upstream (the router).
  obs::QueryContext Ctx;
};

/// Thread-safe asynchronous front door; see file comment.
class AsyncSynthesisService {
public:
  explicit AsyncSynthesisService(AsyncOptions Opts = {});
  /// Drains the queue (every accepted future completes), then joins.
  ~AsyncSynthesisService();

  AsyncSynthesisService(const AsyncSynthesisService &) = delete;
  AsyncSynthesisService &operator=(const AsyncSynthesisService &) = delete;

  /// Registers \p D on the wrapped service. Single-threaded setup only;
  /// must happen before the first submit().
  void addDomain(const Domain &D);

  /// Completion callback of the extended submit(); invoked exactly once
  /// — synchronously for immediate rejections (unknown domain, shed,
  /// gate, draining), from the worker thread otherwise.
  using Callback = std::function<void(const ServiceReport &)>;

  /// Enqueues the query and returns its future. Always returns a valid
  /// future: on shed (queue full) or unknown domain it is already
  /// satisfied with an Overloaded / UnknownDomain report.
  std::future<ServiceReport> submit(std::string_view DomainName,
                                    std::string_view QueryText);

  /// Same, with per-submission options and an optional completion
  /// callback (the asynchronous consumers — data plane, router — get
  /// their answer without parking a thread on the future).
  std::future<ServiceReport> submit(std::string_view DomainName,
                                    std::string_view QueryText,
                                    const SubmitOptions &SO, Callback Done);

  /// Starts a graceful drain: from now on submit() rejects immediately
  /// with ServiceStatus::Draining, /readyz (via the endpoint health
  /// provider) reports 503 so routers stop sending traffic, and
  /// \p GraceMs from now queued-but-unstarted work is cancelled instead
  /// of run (work dequeued inside the grace window still runs, with its
  /// budget clipped to the drain deadline). Idempotent; there is no
  /// un-drain — this precedes destruction.
  void beginDrain(uint64_t GraceMs);
  bool draining() const {
    return DrainFlag.load(std::memory_order_acquire);
  }
  /// True once draining and no queued or running work remains (the
  /// "safe to destroy" signal a supervisor polls).
  bool drainComplete() const {
    return draining() && Pool.queueDepth() == 0 && Pool.running() == 0;
  }

  /// The wrapped serial service (breaker state, cache stats, options).
  SynthesisService &service() { return Svc; }
  const SynthesisService &service() const { return Svc; }

  /// Tasks accepted but not yet started.
  size_t queueDepth() const { return Pool.queueDepth(); }
  /// Tasks currently executing on the pool.
  size_t runningTasks() const { return Pool.running(); }
  unsigned workers() const { return Pool.workers(); }

  /// Live effective limits (equal to the configured statics until the
  /// load controller moves them).
  size_t queueCap() const { return Pool.queueCap(); }
  unsigned coalesceBatch() const { return Pool.coalesceBatch(); }

  /// The adaptive controller, or null when LoadControl.Enabled is false.
  LoadController *loadController() { return Controller.get(); }
  const LoadController *loadController() const { return Controller.get(); }

  AsyncStats stats() const;

  /// One JSON object for the introspection endpoint's /statusz: queue
  /// depth/cap, worker and shed/cancel counters, wrapped around the
  /// serial service's per-domain status. Registered automatically on
  /// the service's endpoint at construction (replacing the plain
  /// SynthesisService provider with this richer one).
  std::string statusJson() const;

  /// Blocks until every task accepted so far has finished (tests/bench).
  void drain() { Pool.drain(); }

private:
  /// Per-domain load state: an always-on service-time histogram feeding
  /// the gate's p50 prediction, the domain's gate hysteresis latch, and
  /// its resolved budget/opt-out. Written only during single-threaded
  /// addDomain() setup; read concurrently afterwards.
  struct DomainLoad {
    obs::Histogram ServiceMs{obs::Histogram::defaultLatencyBucketsMs()};
    std::atomic<bool> Gated{false};
    uint64_t BudgetMs = 0;
    bool GateEnabled = true;
  };

  /// Builds the controller's measured-state snapshot (wait percentiles
  /// over the tick interval, depth, shed/cancel totals, breaker count).
  LoadSample sampleLoad();
  DomainLoad *loadFor(std::string_view DomainName);

  AsyncOptions Opts;
  SynthesisService Svc;
  ThreadPool Pool;
  std::unique_ptr<LoadController> Controller;

  /// Always-on queue-wait histogram (the registry twin is gated on the
  /// global metrics switch; the controller must see waits regardless).
  obs::Histogram QueueWaitMs{obs::Histogram::defaultLatencyBucketsMs()};
  /// Previous wait-bucket snapshot for interval percentiles, and the
  /// guard serializing sample construction across overlapping ticks.
  std::vector<uint64_t> PrevWaitCounts;
  std::mutex SampleM;

  std::map<std::string, std::unique_ptr<DomainLoad>, std::less<>> Loads;
  /// Tightest registered per-query budget (the controller's reference).
  uint64_t RefBudgetMs = 0;

  std::atomic<uint64_t> Cancelled{0};
  std::atomic<uint64_t> Completed{0};
  std::atomic<uint64_t> GateRejected{0};
  std::atomic<uint64_t> DrainRejected{0};

  /// Drain state: the flag gates admission, the deadline (clock ticks
  /// since epoch; 0 = none) bounds how long accepted work may still run.
  std::atomic<bool> DrainFlag{false};
  std::atomic<int64_t> DrainDeadlineTicks{0};

  /// Tokens of our /statusz, /healthz and /v1/synthesize registrations
  /// on the wrapped service's endpoint; the destructor's token-matched
  /// clears cannot wipe a newer owner's providers.
  uint64_t StatusReg = 0;
  uint64_t HealthReg = 0;
  uint64_t SynthesizeReg = 0;
};

} // namespace dggt

#endif // DGGT_SERVICE_ASYNCSYNTHESISSERVICE_H
