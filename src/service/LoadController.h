//===- service/LoadController.h - Adaptive load control ---------*- C++ -*-===//
///
/// \file
/// The adaptive replacement for the async service's static QueueCap /
/// CoalesceBatch knobs: a periodic controller that turns the measured
/// queue-wait distribution into three live targets —
///
///   1. an *effective queue cap*: shrink when the p95 queue wait eats
///      into the per-query budget (admitted work is already doomed),
///      grow when the service is idle yet shedding (work it could have
///      served);
///   2. an *effective coalesce batch*: widen under congestion so workers
///      amortize warm per-domain caches, decay back to the configured
///      batch when load clears;
///   3. a *deadline-aware admission gate*: reject a query at submit()
///      when `p95 queue wait + p50 service time > its budget` — an
///      immediate Overloaded beats cancelling after the wait, both for
///      the caller (fail fast, retry elsewhere) and for the pool (no
///      queue slot burned on doomed work).
///
/// The policy is a small, analyzable decision rule over measured state
/// (in the spirit of treating scheduling as a searchable program, not a
/// heuristic buried in the pool):
///
///   congested := p95_wait > High * budget  OR  new cancellations
///                                          OR  an open breaker
///   idle      := p95_wait < Low * budget  AND  no new cancellations
///                                         AND  no open breaker
///
///   congested -> cap -= step;  batch += step   (throughput mode)
///   idle      -> cap += step if shedding or the queue is full;
///                batch decays toward the configured value
///   otherwise -> hold                          (the dead band *is* the
///                                               hysteresis: between the
///                                               waters nothing moves,
///                                               so two ticks over the
///                                               same state never
///                                               oscillate)
///
/// with every step bounded (MaxStepFraction of the current value, at
/// least 1) and clamped to [Min, Max]. Percentiles are taken over the
/// *tick interval* — the delta between two bucket snapshots of the
/// cumulative wait histogram — so the controller reacts to current
/// traffic, not the process's lifetime average.
///
/// Built clock-injectable from day one: every instant flows through a
/// support/Clock ClockSource, so unit tests drive ticks and gate
/// decisions on a VirtualClock with zero sleeps (tests/
/// load_controller_test.cpp is table-driven: synthetic histograms in,
/// expected targets out).
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_SERVICE_LOADCONTROLLER_H
#define DGGT_SERVICE_LOADCONTROLLER_H

#include "obs/Metrics.h"
#include "support/Clock.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

namespace dggt {

/// Tuning of the adaptive policy. The defaults are deliberately gentle:
/// a quarter-step per tick means the cap moves at most ~4x per second at
/// the default cadence, fast enough to ride a traffic spike and slow
/// enough never to thrash.
struct LoadControlOptions {
  /// Master switch. Off = the static QueueCap / CoalesceBatch behave
  /// exactly as before this controller existed.
  bool Enabled = false;
  /// Controller cadence; maybeTick() is a no-op between ticks.
  uint64_t TickIntervalMs = 100;
  /// Clamp range of the effective queue cap. Ignored when the configured
  /// cap is 0 (unbounded): an unbounded queue stays unbounded and only
  /// the batch and the admission gate adapt.
  size_t MinQueueCap = 4;
  size_t MaxQueueCap = 4096;
  /// Clamp range of the effective coalesce batch; the idle decay floor
  /// is the *configured* batch (clamped into this range), so light load
  /// returns to the tuned static behavior, not to the minimum.
  unsigned MinCoalesceBatch = 1;
  unsigned MaxCoalesceBatch = 64;
  /// Dead-band waters as fractions of the reference budget: p95 wait
  /// below Low*budget reads as idle, above High*budget as congested,
  /// in between the controller holds (hysteresis).
  double LowWaterFraction = 0.125;
  double HighWaterFraction = 0.375;
  /// Per-tick bound on the relative change of cap and batch (>= one
  /// unit), so one noisy tick cannot halve the service's capacity.
  double MaxStepFraction = 0.25;
  /// Deadline-aware admission gate switch (per-domain opt-out lives in
  /// ServiceOptions::AdmissionGate).
  bool AdmissionGate = true;
  /// Gate hysteresis: a domain gates when predicted completion exceeds
  /// GateOnFraction * budget and re-admits only once it drops below
  /// GateOffFraction * budget.
  double GateOnFraction = 1.0;
  double GateOffFraction = 0.8;
  /// Which percentile of the domain's service-time history the gate
  /// predicts with. p50 is optimistic for heavy-tailed domains — half
  /// the admitted queries run longer than predicted, so the gate admits
  /// work the tail then dooms; p90 prices the tail in. The async service
  /// reads this when feeding admit().
  double GateServicePercentile = 90.0;
};

/// One measured state snapshot the policy decides over. The cumulative
/// counters are process totals; the controller diffs them internally so
/// a decision only sees what happened since the previous tick.
struct LoadSample {
  double WaitP50Ms = 0; ///< Queue wait p50 over the tick interval.
  double WaitP95Ms = 0; ///< Queue wait p95 over the tick interval.
  size_t QueueDepth = 0;
  uint64_t ShedTotal = 0;      ///< Cumulative cap rejections.
  uint64_t CancelledTotal = 0; ///< Cumulative queued-past-deadline kills.
  unsigned OpenBreakers = 0;   ///< Domains with an open circuit breaker.
  /// Reference per-query budget the waters scale against (the tightest
  /// domain budget); 0 = unlimited, which disables the wait thresholds.
  uint64_t BudgetMs = 0;
};

/// Periodic controller; see the file comment for the control law.
/// Thread-safe: maybeTick() may race from every submitter, target reads
/// are lock-free atomics.
class LoadController {
public:
  /// What one tick decided (returned for tests and decision counters).
  struct Decision {
    size_t QueueCap = 0;
    unsigned CoalesceBatch = 1;
    bool Congested = false; ///< Classified above the high water.
    bool Idle = false;      ///< Classified below the low water.
    bool CapGrew = false, CapShrank = false;
  };

  /// Monotonic decision counters.
  struct Stats {
    uint64_t Ticks = 0;
    uint64_t CapGrows = 0;
    uint64_t CapShrinks = 0;
  };

  /// Starts from the configured static targets; \p Clk is the time
  /// source for the tick cadence (null = real steady clock) and must
  /// outlive the controller.
  LoadController(LoadControlOptions O, size_t InitialQueueCap,
                 unsigned InitialCoalesceBatch,
                 const ClockSource *Clk = nullptr);

  const LoadControlOptions &options() const { return Opts; }

  /// Runs one control tick over \p S unconditionally (tests and the
  /// cadence wrapper below). Serialized internally.
  Decision tick(const LoadSample &S);

  /// Cadence guard: runs tick(Sampler()) when TickIntervalMs has elapsed
  /// since the last tick; otherwise (or when disabled) does nothing and
  /// returns nullopt. Cheap enough for every submit() — one atomic load
  /// on the fast path.
  std::optional<Decision> maybeTick(const std::function<LoadSample()> &Sampler);

  /// Current targets (lock-free).
  size_t queueCap() const { return Cap.load(std::memory_order_relaxed); }
  unsigned coalesceBatch() const {
    return Batch.load(std::memory_order_relaxed);
  }
  /// Last tick's interval wait percentiles (what the gate predicts with).
  double waitP95Ms() const;
  double waitP50Ms() const;

  /// Deadline-aware admission. Returns false (reject with Overloaded)
  /// when the predicted completion `p95 wait + service time` exceeds the
  /// gate-on water of \p BudgetMs. \p ServiceMs is the caller's service-
  /// time estimate — the async service passes its per-domain histogram
  /// at GateServicePercentile (default p90, so the heavy tail is priced
  /// in). \p GateLatch is the caller's per-domain hysteresis state: once
  /// gated, the domain re-admits only below the gate-off water. Always
  /// admits when the gate is disabled or \p BudgetMs is 0 (unlimited).
  bool admit(double ServiceMs, uint64_t BudgetMs,
             std::atomic<bool> &GateLatch) const;

  Stats stats() const;

  /// Fills the interval wait percentiles of \p S from \p H: percentiles
  /// of the bucket delta since \p PrevCounts (updated in place). An
  /// empty interval yields zeros. Shared by the async service's sampler
  /// and the table-driven tests, so both feed the policy through the
  /// same math.
  static void sampleWaitInterval(const obs::Histogram &H,
                                 std::vector<uint64_t> &PrevCounts,
                                 LoadSample &S);

private:
  LoadControlOptions Opts;
  const ClockSource *Clk;
  size_t ConfiguredCap;       ///< 0 = unbounded: cap control disabled.
  unsigned BatchFloor;        ///< Idle decay floor (configured batch).

  std::atomic<size_t> Cap;
  std::atomic<unsigned> Batch;
  /// Interval percentiles in microseconds (atomics so the gate reads
  /// them lock-free on the submit path).
  std::atomic<uint64_t> WaitP95Us{0};
  std::atomic<uint64_t> WaitP50Us{0};
  std::atomic<int64_t> LastTickTicks; ///< Clock ticks of the last tick.

  mutable std::mutex M; ///< Serializes tick() state below.
  uint64_t PrevShed = 0;
  uint64_t PrevCancelled = 0;
  Stats Counts;
};

} // namespace dggt

#endif // DGGT_SERVICE_LOADCONTROLLER_H
