//===- service/LoadController.cpp - Adaptive load control -----------------===//

#include "service/LoadController.h"

#include <algorithm>

using namespace dggt;

namespace {

/// One bounded step of the control law: at least one unit, at most
/// \p Fraction of the current value.
uint64_t stepOf(uint64_t Current, double Fraction) {
  auto Step = static_cast<uint64_t>(static_cast<double>(Current) * Fraction);
  return std::max<uint64_t>(1, Step);
}

} // namespace

LoadController::LoadController(LoadControlOptions O, size_t InitialQueueCap,
                               unsigned InitialCoalesceBatch,
                               const ClockSource *Clk)
    : Opts(O), Clk(Clk), ConfiguredCap(InitialQueueCap),
      BatchFloor(std::clamp(std::max(1u, InitialCoalesceBatch),
                            std::max(1u, O.MinCoalesceBatch),
                            std::max(1u, O.MaxCoalesceBatch))),
      Cap(InitialQueueCap), Batch(BatchFloor),
      LastTickTicks(clockNow(Clk).time_since_epoch().count()) {
  // A configured cap outside the clamp range would snap on the first
  // tick anyway; normalizing eagerly keeps the published target honest.
  if (ConfiguredCap != 0)
    Cap.store(std::clamp(ConfiguredCap, std::max<size_t>(1, Opts.MinQueueCap),
                         std::max<size_t>(1, Opts.MaxQueueCap)),
              std::memory_order_relaxed);
}

double LoadController::waitP95Ms() const {
  return static_cast<double>(WaitP95Us.load(std::memory_order_relaxed)) /
         1000.0;
}

double LoadController::waitP50Ms() const {
  return static_cast<double>(WaitP50Us.load(std::memory_order_relaxed)) /
         1000.0;
}

LoadController::Decision LoadController::tick(const LoadSample &S) {
  std::lock_guard<std::mutex> L(M);
  ++Counts.Ticks;

  // Publish the interval percentiles first: even a "hold" tick refreshes
  // what the admission gate predicts with.
  WaitP95Us.store(static_cast<uint64_t>(std::max(0.0, S.WaitP95Ms) * 1000.0),
                  std::memory_order_relaxed);
  WaitP50Us.store(static_cast<uint64_t>(std::max(0.0, S.WaitP50Ms) * 1000.0),
                  std::memory_order_relaxed);

  uint64_t ShedDelta = S.ShedTotal - std::min(S.ShedTotal, PrevShed);
  uint64_t CancelledDelta =
      S.CancelledTotal - std::min(S.CancelledTotal, PrevCancelled);
  PrevShed = S.ShedTotal;
  PrevCancelled = S.CancelledTotal;

  // Classification. With an unlimited budget the wait waters are
  // meaningless, so only hard failure signals (cancellations, an open
  // breaker) read as congestion.
  bool Congested = CancelledDelta > 0 || S.OpenBreakers > 0;
  bool Idle = CancelledDelta == 0 && S.OpenBreakers == 0;
  if (S.BudgetMs != 0) {
    double Budget = static_cast<double>(S.BudgetMs);
    Congested = Congested || S.WaitP95Ms > Opts.HighWaterFraction * Budget;
    Idle = Idle && S.WaitP95Ms < Opts.LowWaterFraction * Budget;
  }

  Decision D;
  D.Congested = Congested;
  D.Idle = Idle && !Congested;

  // Queue cap: shrink under congestion, grow when idle *and* the cap is
  // actually binding (we shed, or the queue is pressed against it). A
  // configured cap of 0 means unbounded: nothing to control.
  size_t CurCap = Cap.load(std::memory_order_relaxed);
  size_t NewCap = CurCap;
  if (ConfiguredCap != 0) {
    size_t MinCap = std::max<size_t>(1, Opts.MinQueueCap);
    size_t MaxCap = std::max(MinCap, Opts.MaxQueueCap);
    size_t Step = stepOf(CurCap, Opts.MaxStepFraction);
    if (D.Congested)
      NewCap = CurCap > MinCap + Step ? CurCap - Step : MinCap;
    else if (D.Idle && (ShedDelta > 0 || S.QueueDepth >= CurCap))
      NewCap = std::min(MaxCap, CurCap + Step);
    D.CapShrank = NewCap < CurCap;
    D.CapGrew = NewCap > CurCap;
    if (NewCap != CurCap) {
      Cap.store(NewCap, std::memory_order_relaxed);
      if (D.CapGrew)
        ++Counts.CapGrows;
      else
        ++Counts.CapShrinks;
    }
  }
  D.QueueCap = NewCap;

  // Coalesce batch: widen under congestion (amortize warm per-domain
  // caches), decay back toward the configured batch when load clears.
  unsigned CurBatch = Batch.load(std::memory_order_relaxed);
  unsigned NewBatch = CurBatch;
  unsigned BStep =
      static_cast<unsigned>(stepOf(CurBatch, Opts.MaxStepFraction));
  if (D.Congested)
    NewBatch = static_cast<unsigned>(std::min<uint64_t>(
        std::max(1u, Opts.MaxCoalesceBatch),
        static_cast<uint64_t>(CurBatch) + BStep));
  else if (D.Idle && CurBatch > BatchFloor)
    NewBatch = CurBatch > BatchFloor + BStep ? CurBatch - BStep : BatchFloor;
  if (NewBatch != CurBatch)
    Batch.store(NewBatch, std::memory_order_relaxed);
  D.CoalesceBatch = NewBatch;

  return D;
}

std::optional<LoadController::Decision>
LoadController::maybeTick(const std::function<LoadSample()> &Sampler) {
  if (!Opts.Enabled)
    return std::nullopt;
  int64_t Now = clockNow(Clk).time_since_epoch().count();
  int64_t Interval =
      std::chrono::duration_cast<ClockSource::Duration>(
          std::chrono::milliseconds(Opts.TickIntervalMs))
          .count();
  int64_t Last = LastTickTicks.load(std::memory_order_acquire);
  if (Now - Last < Interval)
    return std::nullopt;
  // One submitter wins the tick; losers return to their fast path.
  if (!LastTickTicks.compare_exchange_strong(Last, Now,
                                             std::memory_order_acq_rel))
    return std::nullopt;
  return tick(Sampler());
}

bool LoadController::admit(double ServiceMs, uint64_t BudgetMs,
                           std::atomic<bool> &GateLatch) const {
  if (!Opts.Enabled || !Opts.AdmissionGate || BudgetMs == 0)
    return true;
  double Predicted = waitP95Ms() + std::max(0.0, ServiceMs);
  double Budget = static_cast<double>(BudgetMs);
  bool Gated = GateLatch.load(std::memory_order_relaxed);
  if (Gated) {
    if (Predicted < Opts.GateOffFraction * Budget)
      Gated = false;
  } else if (Predicted > Opts.GateOnFraction * Budget) {
    Gated = true;
  }
  GateLatch.store(Gated, std::memory_order_relaxed);
  return !Gated;
}

LoadController::Stats LoadController::stats() const {
  std::lock_guard<std::mutex> L(M);
  return Counts;
}

void LoadController::sampleWaitInterval(const obs::Histogram &H,
                                        std::vector<uint64_t> &PrevCounts,
                                        LoadSample &S) {
  std::vector<uint64_t> Now = H.bucketSnapshot();
  std::vector<uint64_t> Delta(Now.size(), 0);
  for (size_t I = 0; I < Now.size(); ++I) {
    uint64_t Prev = I < PrevCounts.size() ? PrevCounts[I] : 0;
    Delta[I] = Now[I] >= Prev ? Now[I] - Prev : 0;
  }
  PrevCounts = std::move(Now);
  S.WaitP50Ms = obs::percentileFromCounts(H.bounds(), Delta, 50);
  S.WaitP95Ms = obs::percentileFromCounts(H.bounds(), Delta, 95);
}
