//===- service/SynthesisService.cpp - Resilient query front door ----------===//

#include "service/SynthesisService.h"

#include "support/FaultInjection.h"
#include "synth/EdgeToPath.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

using namespace dggt;

std::string_view dggt::serviceStatusName(ServiceStatus St) {
  switch (St) {
  case ServiceStatus::Ok:
    return "ok";
  case ServiceStatus::NoCandidates:
    return "no-candidates";
  case ServiceStatus::NoAnswer:
    return "no-answer";
  case ServiceStatus::DeadlineExceeded:
    return "deadline-exceeded";
  case ServiceStatus::CircuitOpen:
    return "circuit-open";
  case ServiceStatus::UnknownDomain:
    return "unknown-domain";
  }
  return "unknown";
}

std::string_view dggt::rungName(ServiceRung R) {
  switch (R) {
  case ServiceRung::DggtFull:
    return "dggt-full";
  case ServiceRung::DggtTight:
    return "dggt-tight";
  case ServiceRung::Hisyn:
    return "hisyn";
  }
  return "unknown";
}

std::string_view dggt::attemptStatusName(AttemptStatus St) {
  switch (St) {
  case AttemptStatus::Success:
    return "success";
  case AttemptStatus::Timeout:
    return "timeout";
  case AttemptStatus::NoCandidates:
    return "no-candidates";
  case AttemptStatus::NoValidTree:
    return "no-valid-tree";
  case AttemptStatus::TransientFault:
    return "transient-fault";
  }
  return "unknown";
}

namespace {

AttemptStatus toAttemptStatus(SynthesisResult::Status St) {
  switch (St) {
  case SynthesisResult::Status::Success:
    return AttemptStatus::Success;
  case SynthesisResult::Status::Timeout:
    return AttemptStatus::Timeout;
  case SynthesisResult::Status::NoCandidates:
    return AttemptStatus::NoCandidates;
  case SynthesisResult::Status::NoValidTree:
    return AttemptStatus::NoValidTree;
  }
  return AttemptStatus::NoValidTree;
}

} // namespace

/// Per-domain state: the domain itself plus its circuit breaker. The
/// breaker is the classic three-state machine: Closed counts consecutive
/// deadline misses, Open sheds every query until a cooldown elapses,
/// then exactly one probe is admitted (half-open); the probe's outcome
/// closes or re-opens the circuit.
struct SynthesisService::DomainState {
  const Domain *D = nullptr;

  mutable std::mutex M;
  unsigned ConsecutiveTimeouts = 0;
  bool Open = false;
  bool ProbeInFlight = false;
  Budget::Clock::time_point OpenedAt{};

  enum class Admission { Admit, Probe, Reject };

  Admission admit(const ServiceOptions &Opts) {
    std::lock_guard<std::mutex> L(M);
    if (!Open)
      return Admission::Admit;
    if (!ProbeInFlight &&
        Budget::Clock::now() - OpenedAt >=
            std::chrono::milliseconds(Opts.BreakerCooldownMs)) {
      ProbeInFlight = true;
      return Admission::Probe;
    }
    return Admission::Reject;
  }

  /// Settles an admitted query's outcome. Only deadline misses count as
  /// breaker failures: fast deterministic negatives (NoAnswer,
  /// NoCandidates) prove the service is healthy.
  void settle(bool WasProbe, bool DeadlineMiss, const ServiceOptions &Opts) {
    std::lock_guard<std::mutex> L(M);
    if (WasProbe)
      ProbeInFlight = false;
    if (!DeadlineMiss) {
      ConsecutiveTimeouts = 0;
      Open = false;
      return;
    }
    if (WasProbe || ++ConsecutiveTimeouts >= Opts.BreakerTripThreshold) {
      Open = true;
      OpenedAt = Budget::Clock::now();
      ConsecutiveTimeouts = 0;
    }
  }

  BreakerState state(const ServiceOptions &Opts) const {
    std::lock_guard<std::mutex> L(M);
    if (!Open)
      return BreakerState::Closed;
    if (ProbeInFlight ||
        Budget::Clock::now() - OpenedAt >=
            std::chrono::milliseconds(Opts.BreakerCooldownMs))
      return BreakerState::HalfOpen;
    return BreakerState::Open;
  }
};

SynthesisService::SynthesisService(ServiceOptions Opts) : Opts(Opts) {}

SynthesisService::~SynthesisService() = default;

void SynthesisService::addDomain(const Domain &D) {
  auto DS = std::make_unique<DomainState>();
  DS->D = &D;
  Domains[D.name()] = std::move(DS);
}

SynthesisService::DomainState *
SynthesisService::findDomain(std::string_view Name) const {
  auto It = Domains.find(Name);
  return It == Domains.end() ? nullptr : It->second.get();
}

SynthesisService::BreakerState
SynthesisService::breakerState(std::string_view Name) const {
  DomainState *DS = findDomain(Name);
  return DS ? DS->state(Opts) : BreakerState::Closed;
}

ServiceReport SynthesisService::query(std::string_view DomainName,
                                      std::string_view QueryText) {
  ServiceReport Rep;
  WallTimer Timer;
  auto Finish = [&](ServiceStatus St) -> ServiceReport & {
    Rep.St = St;
    Rep.TotalSeconds = Timer.seconds();
    return Rep;
  };

  DomainState *DS = findDomain(DomainName);
  if (!DS)
    return Finish(ServiceStatus::UnknownDomain);

  DomainState::Admission A = DS->admit(Opts);
  if (A == DomainState::Admission::Reject)
    return Finish(ServiceStatus::CircuitOpen);
  bool Probe = A == DomainState::Admission::Probe;

  Budget Total(Opts.TotalBudgetMs);
  PreparedQuery Full = DS->D->frontEnd().prepare(QueryText);

  if (!Full.allWordsMapped()) {
    // No rung changes the word-to-API mapping: fail fast, keep the whole
    // remaining budget for queries that can be answered.
    DS->settle(Probe, /*DeadlineMiss=*/false, Opts);
    return Finish(ServiceStatus::NoCandidates);
  }

  std::vector<ServiceRung> Ladder{ServiceRung::DggtFull,
                                  ServiceRung::DggtTight};
  if (Opts.EnableHisynFallback)
    Ladder.push_back(ServiceRung::Hisyn);

  // The tightened query reuses steps 1-3 (parse, prune, WordToAPI) and
  // only redoes the path search under the tightened caps, lazily, so the
  // happy path never pays for it.
  std::optional<PreparedQuery> TightQ;

  AttemptStatus Last = AttemptStatus::NoValidTree;
  bool BudgetRanOut = false;

  for (size_t RI = 0; RI < Ladder.size(); ++RI) {
    ServiceRung Rung = Ladder[RI];
    uint64_t Left = Total.remainingMs();
    if (Left == 0) {
      BudgetRanOut = true;
      break;
    }
    bool FinalRung = RI + 1 == Ladder.size();
    uint64_t RungMs =
        FinalRung ? 0 // child(0): the whole remainder.
                  : std::max<uint64_t>(
                        1, static_cast<uint64_t>(
                               static_cast<double>(Left) *
                               Opts.RungBudgetFraction));

    const PreparedQuery *Q = &Full;
    if (Rung == ServiceRung::DggtTight) {
      if (!TightQ) {
        TightQ = Full;
        TightQ->Limits = Opts.TightLimits;
        TightQ->Edges = buildEdgeToPath(*Full.GG, *Full.Doc, Full.Pruned,
                                        Full.Words, Opts.TightLimits);
      }
      Q = &*TightQ;
    }

    for (unsigned Try = 0; Try <= Opts.MaxRetriesPerRung; ++Try) {
      if (Try > 0) {
        uint64_t BackoffMs = std::min(Opts.RetryBackoffMs << (Try - 1),
                                      Total.remainingMs());
        if (BackoffMs > 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMs));
      }
      WallTimer AttemptTimer;
      if (faultFires(faults::ServiceTransient)) {
        Last = AttemptStatus::TransientFault;
        Rep.Attempts.push_back({Rung, Last, AttemptTimer.seconds(), Try});
        continue; // Retry the same rung (bounded by MaxRetriesPerRung).
      }
      Budget RungBudget = Total.child(RungMs);
      SynthesisResult R = Rung == ServiceRung::Hisyn
                              ? Hisyn.synthesize(*Q, RungBudget)
                              : Dggt.synthesize(*Q, RungBudget);
      Last = toAttemptStatus(R.St);
      Rep.Attempts.push_back({Rung, Last, AttemptTimer.seconds(), Try});

      if (R.ok()) {
        Rep.Result = std::move(R);
        Rep.AnsweredBy = Rung;
        DS->settle(Probe, /*DeadlineMiss=*/false, Opts);
        return Finish(ServiceStatus::Ok);
      }
      if (Last == AttemptStatus::NoCandidates) {
        DS->settle(Probe, /*DeadlineMiss=*/false, Opts);
        return Finish(ServiceStatus::NoCandidates);
      }
      // Timeout and NoValidTree are not transient: degrade to the next
      // rung instead of burning budget on a retry of the same work.
      break;
    }
  }

  // No rung answered. The outcome is a deadline miss when time actually
  // ran out (or the final rung itself timed out); a ladder that completed
  // with deterministic negatives is a definitive no-answer.
  bool DeadlineMiss = BudgetRanOut || Last == AttemptStatus::Timeout;
  DS->settle(Probe, DeadlineMiss, Opts);
  return Finish(DeadlineMiss ? ServiceStatus::DeadlineExceeded
                             : ServiceStatus::NoAnswer);
}
