//===- service/SynthesisService.cpp - Resilient query front door ----------===//

#include "service/SynthesisService.h"

#include "grammar/PathCache.h"
#include "obs/Export.h"
#include "obs/HttpEndpoint.h"
#include "obs/Metrics.h"
#include "obs/QueryLog.h"
#include "support/Arena.h"
#include "support/FaultInjection.h"
#include "synth/EdgeToPath.h"
#include "text/Warmup.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>

using namespace dggt;

std::string_view dggt::serviceStatusName(ServiceStatus St) {
  switch (St) {
  case ServiceStatus::Ok:
    return "ok";
  case ServiceStatus::NoCandidates:
    return "no-candidates";
  case ServiceStatus::NoAnswer:
    return "no-answer";
  case ServiceStatus::DeadlineExceeded:
    return "deadline-exceeded";
  case ServiceStatus::CircuitOpen:
    return "circuit-open";
  case ServiceStatus::UnknownDomain:
    return "unknown-domain";
  case ServiceStatus::Overloaded:
    return "overloaded";
  case ServiceStatus::Cancelled:
    return "cancelled";
  case ServiceStatus::Draining:
    return "draining";
  }
  return "unknown";
}

int dggt::httpStatusFor(ServiceStatus St) {
  switch (St) {
  case ServiceStatus::Ok:
  case ServiceStatus::NoCandidates:
  case ServiceStatus::NoAnswer:
    // The query *ran*; "no codelet found" is an answer, not a transport
    // failure — the JSON status field distinguishes the three.
    return 200;
  case ServiceStatus::DeadlineExceeded:
    return 504;
  case ServiceStatus::CircuitOpen:
  case ServiceStatus::Draining:
  case ServiceStatus::Cancelled:
    // Temporarily unable / shard going away: safe to retry elsewhere.
    return 503;
  case ServiceStatus::UnknownDomain:
    return 404;
  case ServiceStatus::Overloaded:
    return 429;
  }
  return 500;
}

std::string dggt::serviceReportJson(const ServiceReport &Rep,
                                    std::string_view Domain) {
  std::ostringstream OS;
  OS << "{\"status\":\"" << serviceStatusName(Rep.St) << "\",\"domain\":\""
     << obs::escapeJson(Domain) << "\"";
  if (Rep.ok()) {
    OS << ",\"codelet\":\"" << obs::escapeJson(Rep.Result.Expression)
       << "\",\"cgt_size\":" << Rep.Result.CgtSize;
  }
  if (Rep.AnsweredBy)
    OS << ",\"answered_by\":\"" << rungName(*Rep.AnsweredBy) << "\"";
  OS << ",\"attempts\":[";
  for (size_t I = 0; I < Rep.Attempts.size(); ++I) {
    const RungAttempt &A = Rep.Attempts[I];
    if (I)
      OS << ",";
    OS << "{\"rung\":\"" << rungName(A.Rung) << "\",\"status\":\""
       << attemptStatusName(A.St) << "\",\"try\":" << A.Try
       << ",\"ms\":" << A.Seconds * 1000.0
       << ",\"remaining_ms\":" << A.RemainingMs << "}";
  }
  OS << "],\"total_ms\":" << Rep.TotalSeconds * 1000.0 << "}";
  return OS.str();
}

std::string_view dggt::rungName(ServiceRung R) {
  switch (R) {
  case ServiceRung::DggtFull:
    return "dggt-full";
  case ServiceRung::DggtTight:
    return "dggt-tight";
  case ServiceRung::Hisyn:
    return "hisyn";
  }
  return "unknown";
}

std::string_view dggt::breakerStateName(SynthesisService::BreakerState St) {
  switch (St) {
  case SynthesisService::BreakerState::Closed:
    return "closed";
  case SynthesisService::BreakerState::Open:
    return "open";
  case SynthesisService::BreakerState::HalfOpen:
    return "half-open";
  }
  return "unknown";
}

std::string_view dggt::attemptStatusName(AttemptStatus St) {
  switch (St) {
  case AttemptStatus::Success:
    return "success";
  case AttemptStatus::Timeout:
    return "timeout";
  case AttemptStatus::NoCandidates:
    return "no-candidates";
  case AttemptStatus::NoValidTree:
    return "no-valid-tree";
  case AttemptStatus::TransientFault:
    return "transient-fault";
  }
  return "unknown";
}

namespace {

AttemptStatus toAttemptStatus(SynthesisResult::Status St) {
  switch (St) {
  case SynthesisResult::Status::Success:
    return AttemptStatus::Success;
  case SynthesisResult::Status::Timeout:
    return AttemptStatus::Timeout;
  case SynthesisResult::Status::NoCandidates:
    return AttemptStatus::NoCandidates;
  case SynthesisResult::Status::NoValidTree:
    return AttemptStatus::NoValidTree;
  }
  return AttemptStatus::NoValidTree;
}

/// Per-rung latency histogram, cached across queries (the rung set is
/// closed, so one static array covers it).
obs::Histogram &rungLatencyMs(ServiceRung R) {
  static obs::Histogram *H[3] = {
      &obs::registry().histogram("dggt_service_rung_latency_ms",
                                 {{"rung", "dggt-full"}}),
      &obs::registry().histogram("dggt_service_rung_latency_ms",
                                 {{"rung", "dggt-tight"}}),
      &obs::registry().histogram("dggt_service_rung_latency_ms",
                                 {{"rung", "hisyn"}}),
  };
  return *H[static_cast<size_t>(R)];
}

} // namespace

ServiceOptions ServiceOptions::resolvedFor(std::string_view DomainName) const {
  ServiceOptions R = *this;
  auto It = Overrides.find(DomainName);
  if (It == Overrides.end())
    return R;
  const DomainOverrides &O = It->second;
  if (O.TotalBudgetMs)
    R.TotalBudgetMs = *O.TotalBudgetMs;
  if (O.RungBudgetFraction)
    R.RungBudgetFraction = *O.RungBudgetFraction;
  if (O.MaxRetriesPerRung)
    R.MaxRetriesPerRung = *O.MaxRetriesPerRung;
  if (O.RetryBackoffMs)
    R.RetryBackoffMs = *O.RetryBackoffMs;
  if (O.TightLimits)
    R.TightLimits = *O.TightLimits;
  if (O.EnableHisynFallback)
    R.EnableHisynFallback = *O.EnableHisynFallback;
  if (O.BreakerTripThreshold)
    R.BreakerTripThreshold = *O.BreakerTripThreshold;
  if (O.BreakerCooldownMs)
    R.BreakerCooldownMs = *O.BreakerCooldownMs;
  if (O.PathCacheBytes)
    R.PathCacheBytes = *O.PathCacheBytes;
  if (O.WordCacheBytes)
    R.WordCacheBytes = *O.WordCacheBytes;
  if (O.AdmissionGate)
    R.AdmissionGate = *O.AdmissionGate;
  return R;
}

/// Per-domain state: the domain itself plus its circuit breaker. The
/// breaker is the classic three-state machine: Closed counts consecutive
/// deadline misses, Open sheds every query until a cooldown elapses,
/// then exactly one probe is admitted (half-open); the probe's outcome
/// closes or re-opens the circuit.
struct SynthesisService::DomainState {
  const Domain *D = nullptr;
  std::string Name;
  /// Base options with this domain's overrides applied (addDomain time).
  ServiceOptions Resolved;
  /// Per-domain query latency, created eagerly so the series exists in
  /// exports even before the first query.
  obs::Histogram *QueryLatencyMs = nullptr;

  /// Cross-query memos shared by every query against this domain (null
  /// when disabled by a zero byte budget). Both are thread-safe; worker
  /// threads of the async layer hit them concurrently.
  std::unique_ptr<PathCache> Paths;
  std::unique_ptr<ApiCandidateCache> Words;

  mutable std::mutex M;
  unsigned ConsecutiveTimeouts = 0;
  bool Open = false;
  bool ProbeInFlight = false;
  Budget::Clock::time_point OpenedAt{};

  enum class Admission { Admit, Probe, Reject };

  /// Counts a breaker state transition (\p To in {"open", "half-open",
  /// "closed"}). Transitions are rare, so the registry lookup is fine.
  void countTransition(const char *To) const {
    if (!obs::metricsEnabled())
      return;
    obs::registry()
        .counter("dggt_service_breaker_transitions_total",
                 {{"domain", Name}, {"to", To}})
        .inc();
  }

  Admission admit() {
    std::lock_guard<std::mutex> L(M);
    if (!Open)
      return Admission::Admit;
    if (!ProbeInFlight &&
        Budget::Clock::now() - OpenedAt >=
            std::chrono::milliseconds(Resolved.BreakerCooldownMs)) {
      ProbeInFlight = true;
      countTransition("half-open");
      return Admission::Probe;
    }
    return Admission::Reject;
  }

  /// Settles an admitted query's outcome. Only deadline misses count as
  /// breaker failures: fast deterministic negatives (NoAnswer,
  /// NoCandidates) prove the service is healthy.
  void settle(bool WasProbe, bool DeadlineMiss) {
    std::lock_guard<std::mutex> L(M);
    if (WasProbe)
      ProbeInFlight = false;
    if (!DeadlineMiss) {
      ConsecutiveTimeouts = 0;
      if (Open)
        countTransition("closed");
      Open = false;
      return;
    }
    if (WasProbe || ++ConsecutiveTimeouts >= Resolved.BreakerTripThreshold) {
      // A tripping first failure and a failed half-open probe both land
      // here; either way the circuit is (re-)opened.
      countTransition("open");
      Open = true;
      OpenedAt = Budget::Clock::now();
      ConsecutiveTimeouts = 0;
    }
  }

  BreakerState state() const {
    std::lock_guard<std::mutex> L(M);
    if (!Open)
      return BreakerState::Closed;
    if (ProbeInFlight ||
        Budget::Clock::now() - OpenedAt >=
            std::chrono::milliseconds(Resolved.BreakerCooldownMs))
      return BreakerState::HalfOpen;
    return BreakerState::Open;
  }
};

SynthesisService::SynthesisService(ServiceOptions Opts)
    : Opts(std::move(Opts)) {
  // Environment-driven exporter wiring (DGGT_METRICS); idempotent and a
  // no-op when the variable is unset.
  obs::applyEnvSpec();
  if (this->Opts.EnableMetrics)
    obs::setMetricsEnabled(true);
  if (this->Opts.Trace)
    obs::Tracer::instance().setSink(this->Opts.Trace);
  // Build the text layer's lazy lookup tables now, on this thread, so
  // worker threads added by the async layer only ever read them.
  warmupTextTables();

  // Live introspection: own an endpoint when asked for one, otherwise
  // join the global spec-configured endpoint if there is one. Last
  // registered service wins the providers (one service per process is
  // the normal shape); the destructor deregisters.
  if (this->Opts.HttpPort) {
    obs::HttpEndpoint::Options HO;
    HO.Port = *this->Opts.HttpPort;
    HO.Announce = true;
    auto Ep = std::make_shared<obs::HttpEndpoint>(HO);
    std::string Error;
    if (Ep->start(Error)) {
      Endpoint = std::move(Ep);
      // A service that asked for a metrics endpoint wants live metrics.
      obs::setMetricsEnabled(true);
    } else {
      std::fprintf(stderr, "[service] http endpoint on port %u failed: %s\n",
                   static_cast<unsigned>(*this->Opts.HttpPort),
                   Error.c_str());
    }
  } else {
    Endpoint = obs::httpEndpoint();
  }
  if (Endpoint) {
    HealthReg = Endpoint->setHealthProvider([this] { return healthStatus(); });
    StatusReg = Endpoint->setStatusProvider([this] { return statusJson(); });
  }
}

SynthesisService::~SynthesisService() {
  // Quiesce the provider callbacks before members go away: the clears
  // synchronize with any in-flight invocation on the server thread.
  // Token-matched, so if a newer service has since taken over the shared
  // endpoint ("last registered wins") this is a no-op and its providers
  // stay live.
  if (Endpoint) {
    Endpoint->clearHealthProvider(HealthReg);
    Endpoint->clearStatusProvider(StatusReg);
  }
}

void SynthesisService::addDomain(const Domain &D) {
  auto DS = std::make_unique<DomainState>();
  DS->D = &D;
  DS->Name = D.name();
  DS->Resolved = Opts.resolvedFor(DS->Name);
  DS->QueryLatencyMs = &obs::registry().histogram(
      "dggt_service_query_latency_ms", {{"domain", DS->Name}});
  if (DS->Resolved.PathCacheBytes > 0)
    DS->Paths =
        std::make_unique<PathCache>(DS->Name, DS->Resolved.PathCacheBytes);
  if (DS->Resolved.WordCacheBytes > 0)
    DS->Words = std::make_unique<ApiCandidateCache>(
        DS->Name, DS->Resolved.WordCacheBytes);
  std::unique_lock<std::shared_mutex> L(DomainsM);
  Domains[D.name()] = std::move(DS);
}

SynthesisService::DomainState *
SynthesisService::findDomain(std::string_view Name) const {
  std::shared_lock<std::shared_mutex> L(DomainsM);
  auto It = Domains.find(Name);
  return It == Domains.end() ? nullptr : It->second.get();
}

std::vector<std::string> SynthesisService::domainNames() const {
  std::shared_lock<std::shared_mutex> L(DomainsM);
  std::vector<std::string> Names;
  Names.reserve(Domains.size());
  for (const auto &[Name, DS] : Domains)
    Names.push_back(Name);
  return Names;
}

obs::HealthStatus SynthesisService::healthStatus() const {
  obs::HealthStatus St;
  std::vector<std::string> OpenDomains;
  size_t NumDomains = 0;
  {
    std::shared_lock<std::shared_mutex> L(DomainsM);
    NumDomains = Domains.size();
    for (const auto &[Name, DS] : Domains)
      if (DS->state() == BreakerState::Open)
        OpenDomains.push_back(Name);
  }
  St.Ready = warmupComplete() && NumDomains > 0;
  St.Healthy = OpenDomains.empty();
  std::ostringstream OS;
  OS << NumDomains << " domain(s)";
  if (!St.Ready)
    OS << (NumDomains == 0 ? "; no domain registered" : "; warmup pending");
  if (!St.Healthy) {
    OS << "; breaker open:";
    for (const std::string &Name : OpenDomains)
      OS << " " << Name;
  }
  St.Detail = OS.str();
  return St;
}

std::string SynthesisService::statusJson() const {
  std::ostringstream OS;
  OS << "{\"domains\":{";
  bool First = true;
  std::shared_lock<std::shared_mutex> L(DomainsM);
  for (const auto &[Name, DS] : Domains) {
    if (!First)
      OS << ",";
    First = false;
    OS << "\"" << obs::escapeJson(Name) << "\":{\"breaker\":\""
       << breakerStateName(DS->state()) << "\",\"budget_ms\":"
       << DS->Resolved.TotalBudgetMs;
    auto WriteCache = [&OS](const char *Key, uint64_t Hits, uint64_t Misses,
                            uint64_t Evictions, uint64_t Bytes,
                            uint64_t Budget, uint64_t Entries,
                            double HitRate) {
      OS << ",\"" << Key << "\":{\"hits\":" << Hits
         << ",\"misses\":" << Misses << ",\"evictions\":" << Evictions
         << ",\"hit_rate\":" << HitRate << ",\"bytes\":" << Bytes
         << ",\"budget_bytes\":" << Budget << ",\"entries\":" << Entries
         << "}";
    };
    if (DS->Paths) {
      PathCacheStats PS = DS->Paths->stats();
      WriteCache("path_cache", PS.Hits, PS.Misses, PS.Evictions, PS.Bytes,
                 DS->Paths->byteBudget(), PS.Entries, PS.hitRate());
    } else {
      OS << ",\"path_cache\":null";
    }
    if (DS->Words) {
      ApiCandidateCacheStats WS = DS->Words->stats();
      WriteCache("word_cache", WS.Hits, WS.Misses, WS.Evictions, WS.Bytes,
                 DS->Words->byteBudget(), WS.Entries, WS.hitRate());
    } else {
      OS << ",\"word_cache\":null";
    }
    OS << "}";
  }
  OS << "}}";
  return OS.str();
}

SynthesisService::BreakerState
SynthesisService::breakerState(std::string_view Name) const {
  DomainState *DS = findDomain(Name);
  return DS ? DS->state() : BreakerState::Closed;
}

const ServiceOptions &
SynthesisService::optionsFor(std::string_view Name) const {
  DomainState *DS = findDomain(Name);
  return DS ? DS->Resolved : Opts;
}

PathCache *SynthesisService::pathCache(std::string_view Name) const {
  DomainState *DS = findDomain(Name);
  return DS ? DS->Paths.get() : nullptr;
}

ApiCandidateCache *SynthesisService::wordCache(std::string_view Name) const {
  DomainState *DS = findDomain(Name);
  return DS ? DS->Words.get() : nullptr;
}

ServiceReport SynthesisService::query(std::string_view DomainName,
                                      std::string_view QueryText) {
  return query(DomainName, QueryText,
               Budget(optionsFor(DomainName).TotalBudgetMs));
}

ServiceReport SynthesisService::query(std::string_view DomainName,
                                      std::string_view QueryText,
                                      Budget Total) {
  ServiceReport Rep;
  WallTimer Timer;
  obs::ScopedSpan QSpan("service.query");
  if (QSpan.active()) {
    QSpan.attr("domain", DomainName);
    QSpan.attr("query", obs::sanitizeQueryText(QueryText));
  }

  DomainState *DS = findDomain(DomainName);
  // Flipped once the pipeline ran for *this* query; guards the cost
  // snapshot so a rejected query never inherits the thread-local cost
  // vector of the previous query on this worker thread.
  bool PipelineRan = false;
  auto Finish = [&](ServiceStatus St) -> ServiceReport & {
    Rep.St = St;
    Rep.TotalSeconds = Timer.seconds();
    if (PipelineRan) {
      Rep.Cost = obs::queryCost();
      // The arena is reset at the pipeline's query boundary and only
      // grows until the next query on this thread, so bytesUsed() here
      // *is* this query's high-water scratch footprint.
      Rep.Cost.ArenaHighWaterBytes = queryArena().bytesUsed();
    }
    if (QSpan.active()) {
      QSpan.attr("status", serviceStatusName(St));
      if (Rep.AnsweredBy)
        QSpan.attr("answered_by", rungName(*Rep.AnsweredBy));
    }
    if (obs::metricsEnabled()) {
      obs::registry()
          .counter("dggt_service_queries_total",
                   {{"domain", std::string(DomainName)},
                    {"status", std::string(serviceStatusName(St))}})
          .inc();
      if (DS) {
        // Attach the query's trace id as an OpenMetrics exemplar so a
        // scrape can jump from a bad latency bucket to the full trace.
        // currentQueryContext() sees the context this thread adopted (or
        // the live span tree); invalid when nothing is traced.
        obs::QueryContext Ctx = obs::currentQueryContext();
        if (Ctx.valid())
          DS->QueryLatencyMs->observe(Rep.TotalSeconds * 1000.0,
                                      Ctx.traceIdHex());
        else
          DS->QueryLatencyMs->observe(Rep.TotalSeconds * 1000.0);
        if (PipelineRan) {
          // Per-query arena high water, with the trace id as exemplar so
          // a fat bucket links straight to the query that caused it.
          // Byte-scaled bounds (1 KiB .. 16 MiB), not the default
          // latency buckets.
          static obs::Histogram &ArenaH = obs::registry().histogram(
              "dggt_arena_high_water_bytes", {},
              {1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0,
               4194304.0, 16777216.0});
          double Bytes =
              static_cast<double>(Rep.Cost.ArenaHighWaterBytes);
          if (Ctx.valid())
            ArenaH.observe(Bytes, Ctx.traceIdHex());
          else
            ArenaH.observe(Bytes);
        }
      }
    }
    return Rep;
  };

  if (!DS)
    return Finish(ServiceStatus::UnknownDomain);
  const ServiceOptions &DOpts = DS->Resolved;

  DomainState::Admission A = DS->admit();
  if (A == DomainState::Admission::Reject)
    return Finish(ServiceStatus::CircuitOpen);
  bool Probe = A == DomainState::Admission::Probe;

  SharedQueryCaches Caches{DS->Paths.get(), DS->Words.get()};
  PreparedQuery Full = DS->D->frontEnd().prepare(QueryText, Caches);
  PipelineRan = true;
  for (size_t I = 0; I < 4; ++I)
    Rep.StageMs[I] = Full.StageMs[I];
  Rep.PathCacheHit = Full.PathCacheHit;
  Rep.WordCacheHit = Full.WordCacheHit;

  if (!Full.allWordsMapped()) {
    // No rung changes the word-to-API mapping: fail fast, keep the whole
    // remaining budget for queries that can be answered.
    DS->settle(Probe, /*DeadlineMiss=*/false);
    return Finish(ServiceStatus::NoCandidates);
  }

  std::vector<ServiceRung> Ladder{ServiceRung::DggtFull,
                                  ServiceRung::DggtTight};
  if (DOpts.EnableHisynFallback)
    Ladder.push_back(ServiceRung::Hisyn);

  // The tightened query reuses steps 1-3 (parse, prune, WordToAPI) and
  // only redoes the path search under the tightened caps, lazily, so the
  // happy path never pays for it.
  std::optional<PreparedQuery> TightQ;

  AttemptStatus Last = AttemptStatus::NoValidTree;
  bool BudgetRanOut = false;

  for (size_t RI = 0; RI < Ladder.size(); ++RI) {
    ServiceRung Rung = Ladder[RI];
    uint64_t Left = Total.remainingMs();
    if (Left == 0) {
      BudgetRanOut = true;
      break;
    }
    bool FinalRung = RI + 1 == Ladder.size();
    uint64_t RungMs =
        FinalRung ? 0 // child(0): the whole remainder.
                  : std::max<uint64_t>(
                        1, static_cast<uint64_t>(
                               static_cast<double>(Left) *
                               DOpts.RungBudgetFraction));

    const PreparedQuery *Q = &Full;
    if (Rung == ServiceRung::DggtTight) {
      if (!TightQ) {
        TightQ = Full;
        TightQ->Limits = DOpts.TightLimits;
        TightQ->Edges = buildEdgeToPath(*Full.GG, *Full.Doc, Full.Pruned,
                                        Full.Words, DOpts.TightLimits,
                                        DS->Paths.get());
      }
      Q = &*TightQ;
    }

    for (unsigned Try = 0; Try <= DOpts.MaxRetriesPerRung; ++Try) {
      if (Try > 0) {
        if (obs::metricsEnabled())
          obs::registry()
              .counter("dggt_service_retries_total",
                       {{"rung", std::string(rungName(Rung))}})
              .inc();
        uint64_t BackoffMs = std::min(DOpts.RetryBackoffMs << (Try - 1),
                                      Total.remainingMs());
        if (BackoffMs > 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(BackoffMs));
      }
      WallTimer AttemptTimer;
      obs::ScopedSpan ASpan("service.rung");
      if (ASpan.active()) {
        ASpan.attr("rung", rungName(Rung));
        ASpan.attr("try", static_cast<uint64_t>(Try));
      }
      auto RecordAttempt = [&](AttemptStatus St) {
        double Seconds = AttemptTimer.seconds();
        Rep.Attempts.push_back(
            {Rung, St, Seconds, Try, Total.remainingMs()});
        if (ASpan.active())
          ASpan.attr("status", attemptStatusName(St));
        if (obs::metricsEnabled()) {
          rungLatencyMs(Rung).observe(Seconds * 1000.0);
          obs::registry()
              .counter("dggt_service_rung_attempts_total",
                       {{"rung", std::string(rungName(Rung))},
                        {"status", std::string(attemptStatusName(St))}})
              .inc();
        }
      };
      if (faultFires(faults::ServiceTransient)) {
        Last = AttemptStatus::TransientFault;
        RecordAttempt(Last);
        continue; // Retry the same rung (bounded by MaxRetriesPerRung).
      }
      Budget RungBudget = Total.child(RungMs);
      SynthesisResult R = Rung == ServiceRung::Hisyn
                              ? Hisyn.synthesize(*Q, RungBudget)
                              : Dggt.synthesize(*Q, RungBudget);
      Last = toAttemptStatus(R.St);
      RecordAttempt(Last);

      if (R.ok()) {
        Rep.Result = std::move(R);
        Rep.AnsweredBy = Rung;
        DS->settle(Probe, /*DeadlineMiss=*/false);
        return Finish(ServiceStatus::Ok);
      }
      if (Last == AttemptStatus::NoCandidates) {
        DS->settle(Probe, /*DeadlineMiss=*/false);
        return Finish(ServiceStatus::NoCandidates);
      }
      // Timeout and NoValidTree are not transient: degrade to the next
      // rung instead of burning budget on a retry of the same work.
      break;
    }
  }

  // No rung answered. The outcome is a deadline miss when time actually
  // ran out (or the final rung itself timed out); a ladder that completed
  // with deterministic negatives is a definitive no-answer.
  bool DeadlineMiss = BudgetRanOut || Last == AttemptStatus::Timeout;
  DS->settle(Probe, DeadlineMiss);
  return Finish(DeadlineMiss ? ServiceStatus::DeadlineExceeded
                             : ServiceStatus::NoAnswer);
}
