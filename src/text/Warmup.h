//===- text/Warmup.h - Eager init of lazy text tables -----------*- C++ -*-===//
///
/// \file
/// The text layer keeps its lookup tables in function-local statics (the
/// built-in thesaurus, the POS lexicon, the stemmer suffix tables). Magic
/// statics make their *initialization* thread-safe, but a pool of worker
/// threads that all take their first query simultaneously would serialize
/// on the init guards — and any future lazy table added without a guard
/// would be a latent race. The service layer calls warmupTextTables()
/// once, before spawning workers, so every table is built on the main
/// thread and workers only ever read.
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_TEXT_WARMUP_H
#define DGGT_TEXT_WARMUP_H

namespace dggt {

/// Forces construction of every lazily-initialized table in the text
/// layer (thesaurus, POS lexicon, stemmer tables). Idempotent and
/// thread-safe; call before spawning worker threads.
void warmupTextTables();

/// True once warmupTextTables() has completed at least once. The
/// introspection endpoint's /readyz derives readiness from this: a
/// process that has not warmed up would serialize its first queries on
/// the table init guards.
bool warmupComplete();

} // namespace dggt

#endif // DGGT_TEXT_WARMUP_H
