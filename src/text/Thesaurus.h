//===- text/Thesaurus.h - Synonym lexicon -----------------------*- C++ -*-===//
///
/// \file
/// An embedded synonym lexicon standing in for WordNet-style NLU tooling
/// (see DESIGN.md substitutions). Words are grouped into concept classes;
/// two words are synonyms if any of their concept classes intersect.
/// The WordToAPI matcher uses this to map query vocabulary ("append",
/// "add") onto API-document vocabulary ("insert").
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_TEXT_THESAURUS_H
#define DGGT_TEXT_THESAURUS_H

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dggt {

/// Synonym groups with optional user extension.
class Thesaurus {
public:
  /// Builds the built-in lexicon covering both evaluation domains.
  static const Thesaurus &builtin();

  /// Creates an empty thesaurus (for custom domains and tests).
  Thesaurus() = default;

  /// Adds a synonym group; every pair of words in \p Words becomes
  /// mutually synonymous. Words are stored lower-cased and also stemmed.
  void addGroup(const std::vector<std::string> &Words);

  /// True if \p A and \p B share a synonym group (or are equal). Inputs
  /// are matched both verbatim and after Porter stemming.
  bool areSynonyms(std::string_view A, std::string_view B) const;

  /// Returns the ids of the groups containing \p Word (empty if none).
  std::vector<unsigned> groupsOf(std::string_view Word) const;

  /// Members of group \p Group as added (lower-cased, insertion order);
  /// empty for out-of-range ids. The workload generator enumerates these
  /// to build paraphrase mutants of ground-truth queries.
  const std::vector<std::string> &groupMembers(unsigned Group) const;

  /// Number of synonym groups added so far.
  unsigned groupCount() const { return NextGroup; }

  /// All distinct synonyms of \p Word across every group containing it
  /// (matched verbatim and via Porter stem, like areSynonyms), excluding
  /// \p Word itself. Sorted and deduplicated, so the enumeration order is
  /// deterministic — seeded generators can sample from it reproducibly.
  std::vector<std::string> synonymsOf(std::string_view Word) const;

private:
  std::unordered_map<std::string, std::vector<unsigned>> WordToGroups;
  /// Group members in insertion order, parallel to group ids.
  std::vector<std::vector<std::string>> Groups;
  unsigned NextGroup = 0;
};

} // namespace dggt

#endif // DGGT_TEXT_THESAURUS_H
