//===- text/Thesaurus.cpp - Synonym lexicon -------------------------------===//

#include "text/Thesaurus.h"

#include "support/StringUtils.h"
#include "text/PorterStemmer.h"

#include <algorithm>

using namespace dggt;

void Thesaurus::addGroup(const std::vector<std::string> &Words) {
  unsigned Group = NextGroup++;
  Groups.emplace_back();
  for (const std::string &W : Words) {
    std::string Lower = toLower(W);
    WordToGroups[Lower].push_back(Group);
    Groups.back().push_back(Lower);
    std::string Stem = porterStem(Lower);
    if (Stem != Lower)
      WordToGroups[Stem].push_back(Group);
  }
}

const std::vector<std::string> &Thesaurus::groupMembers(unsigned Group) const {
  static const std::vector<std::string> Empty;
  return Group < Groups.size() ? Groups[Group] : Empty;
}

std::vector<std::string> Thesaurus::synonymsOf(std::string_view Word) const {
  std::string Lower = toLower(Word);
  std::string Stem = porterStem(Lower);
  std::vector<std::string> Out;
  for (unsigned Group : groupsOf(Lower))
    for (const std::string &Member : groupMembers(Group))
      if (Member != Lower && porterStem(Member) != Stem)
        Out.push_back(Member);
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

std::vector<unsigned> Thesaurus::groupsOf(std::string_view Word) const {
  std::string Lower = toLower(Word);
  std::vector<unsigned> Groups;
  auto Collect = [&](const std::string &Key) {
    auto It = WordToGroups.find(Key);
    if (It != WordToGroups.end())
      Groups.insert(Groups.end(), It->second.begin(), It->second.end());
  };
  Collect(Lower);
  std::string Stem = porterStem(Lower);
  if (Stem != Lower)
    Collect(Stem);
  std::sort(Groups.begin(), Groups.end());
  Groups.erase(std::unique(Groups.begin(), Groups.end()), Groups.end());
  return Groups;
}

bool Thesaurus::areSynonyms(std::string_view A, std::string_view B) const {
  std::string LA = toLower(A), LB = toLower(B);
  if (LA == LB || porterStem(LA) == porterStem(LB))
    return true;
  std::vector<unsigned> GA = groupsOf(LA), GB = groupsOf(LB);
  // Both lists are sorted; intersect.
  auto IA = GA.begin();
  auto IB = GB.begin();
  while (IA != GA.end() && IB != GB.end()) {
    if (*IA == *IB)
      return true;
    if (*IA < *IB)
      ++IA;
    else
      ++IB;
  }
  return false;
}

const Thesaurus &Thesaurus::builtin() {
  static const Thesaurus T = [] {
    Thesaurus Th;
    // Editing actions.
    Th.addGroup({"insert", "add", "append", "prepend", "put", "place",
                 "attach"});
    Th.addGroup({"delete", "remove", "erase", "drop", "strip", "clear",
                 "eliminate"});
    Th.addGroup({"replace", "substitute", "change", "swap", "exchange"});
    Th.addGroup({"copy", "duplicate", "clone"});
    Th.addGroup({"move", "relocate", "shift"});
    Th.addGroup({"select", "highlight", "mark", "pick", "choose"});
    Th.addGroup({"print", "show", "display", "output", "emit"});
    Th.addGroup({"find", "search", "serach", "list", "locate", "match",
                 "lookup", "query", "identify"});
    Th.addGroup({"merge", "join", "combine", "concatenate"});
    Th.addGroup({"split", "divide", "break"});
    Th.addGroup({"sort", "order", "arrange"});
    Th.addGroup({"count", "tally", "enumerate"});
    Th.addGroup({"capitalize", "uppercase", "upper", "capital"});
    Th.addGroup({"lowercase", "lower", "small"});
    Th.addGroup({"convert", "turn", "transform"});

    // Positions and scopes.
    Th.addGroup({"start", "begin", "beginning", "front", "head"});
    Th.addGroup({"end", "finish", "tail", "back"});
    Th.addGroup({"before", "preceding", "ahead"});
    Th.addGroup({"after", "following", "behind", "past"});
    Th.addGroup({"position", "location", "place", "offset", "spot"});
    Th.addGroup({"line", "row"});
    Th.addGroup({"word", "term"});
    Th.addGroup({"character", "char", "letter", "symbol"});
    Th.addGroup({"sentence", "clause"});
    Th.addGroup({"paragraph", "block"});
    Th.addGroup({"document", "file", "text", "buffer"});
    Th.addGroup({"number", "numeral", "digit", "numeric", "integer"});
    Th.addGroup({"space", "whitespace", "blank"});
    Th.addGroup({"occurrence", "instance", "appearance", "hit", "time"});
    Th.addGroup({"each", "every", "all", "any"});
    Th.addGroup({"contain", "include", "have", "has", "with", "hold",
                 "carry"});
    Th.addGroup({"empty", "blank", "bare"});
    Th.addGroup({"first", "initial", "leading"});
    Th.addGroup({"last", "final", "trailing"});

    // Code-analysis vocabulary.
    Th.addGroup({"expression", "expr"});
    Th.addGroup({"statement", "stmt"});
    Th.addGroup({"declaration", "decl", "definition"});
    Th.addGroup({"function", "routine", "procedure"});
    Th.addGroup({"method", "memberfunction"});
    Th.addGroup({"constructor", "ctor"});
    Th.addGroup({"destructor", "dtor"});
    Th.addGroup({"variable", "var"});
    Th.addGroup({"field", "member", "attribute"});
    Th.addGroup({"parameter", "param", "parm"});
    Th.addGroup({"argument", "arg", "operand"});
    Th.addGroup({"class", "record", "struct"});
    Th.addGroup({"call", "invocation", "invoke"});
    Th.addGroup({"name", "identifier", "named", "called"});
    Th.addGroup({"type", "kind"});
    Th.addGroup({"loop", "iteration", "iterate"});
    Th.addGroup({"condition", "predicate", "test", "guard"});
    Th.addGroup({"body", "block"});
    Th.addGroup({"return", "result", "yield"});
    Th.addGroup({"reference", "refer", "ref", "mention", "use"});
    Th.addGroup({"declare", "define", "introduce"});
    Th.addGroup({"literal", "constant", "value"});
    Th.addGroup({"operator", "operation"});
    Th.addGroup({"base", "parent", "super"});
    Th.addGroup({"derived", "child", "sub", "inherit"});
    Th.addGroup({"cast", "conversion"});
    Th.addGroup({"template", "generic"});
    Th.addGroup({"pointer", "ptr"});
    Th.addGroup({"boolean", "bool"});
    Th.addGroup({"float", "floating", "double"});
    return Th;
  }();
  return T;
}
