//===- text/Warmup.cpp - Eager init of lazy text tables -------------------===//

#include "text/Warmup.h"

#include "text/PorterStemmer.h"
#include "text/PosTagger.h"
#include "text/Thesaurus.h"
#include "text/Tokenizer.h"

#include <atomic>
#include <mutex>

using namespace dggt;

namespace {
std::atomic<bool> WarmupDone{false};
} // namespace

void dggt::warmupTextTables() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    // Thesaurus: the built-in lexicon (covers both evaluation domains).
    (void)Thesaurus::builtin();
    // POS tagger: one tag call touches the lexicon map; the sentence
    // exercises lexicon, suffix and context-repair passes.
    (void)tagTokens(tokenize("replace every word in the line with 42"));
    // Stemmer: suffix tables live in stem paths for -ed/-ing/-ational.
    (void)porterStem("relational");
    (void)porterStem("hopping");
    WarmupDone.store(true, std::memory_order_release);
  });
}

bool dggt::warmupComplete() {
  return WarmupDone.load(std::memory_order_acquire);
}
