//===- text/Tokenizer.cpp - Query tokenizer -------------------------------===//

#include "text/Tokenizer.h"

#include "support/StringUtils.h"

#include <cctype>

using namespace dggt;

std::vector<Token> dggt::tokenize(std::string_view Query) {
  std::vector<Token> Tokens;
  size_t I = 0;
  auto Push = [&](TokenKind Kind, std::string Text) {
    Token T;
    T.Kind = Kind;
    T.Text = std::move(Text);
    T.Index = static_cast<unsigned>(Tokens.size());
    Tokens.push_back(std::move(T));
  };

  while (I < Query.size()) {
    unsigned char C = Query[I];
    if (std::isspace(C)) {
      ++I;
      continue;
    }
    if (C == '"' || C == '\'') {
      // Quoted literal; an unterminated quote swallows the rest of the line.
      char Quote = static_cast<char>(C);
      size_t End = Query.find(Quote, I + 1);
      if (End == std::string_view::npos)
        End = Query.size();
      Push(TokenKind::Literal, std::string(Query.substr(I + 1, End - I - 1)));
      I = End < Query.size() ? End + 1 : End;
      continue;
    }
    if (std::isdigit(C)) {
      size_t End = I;
      while (End < Query.size() &&
             std::isdigit(static_cast<unsigned char>(Query[End])))
        ++End;
      Push(TokenKind::Number, std::string(Query.substr(I, End - I)));
      I = End;
      continue;
    }
    if (std::isalpha(C)) {
      // Words may contain internal hyphens/apostrophes ("if-then") which we
      // keep as part of the word.
      size_t End = I;
      while (End < Query.size()) {
        unsigned char W = Query[End];
        if (std::isalpha(W)) {
          ++End;
          continue;
        }
        if ((W == '-' || W == '\'') && End + 1 < Query.size() &&
            std::isalpha(static_cast<unsigned char>(Query[End + 1]))) {
          ++End;
          continue;
        }
        break;
      }
      Push(TokenKind::Word, toLower(Query.substr(I, End - I)));
      I = End;
      continue;
    }
    Push(TokenKind::Punct, std::string(1, static_cast<char>(C)));
    ++I;
  }
  return Tokens;
}
