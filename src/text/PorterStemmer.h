//===- text/PorterStemmer.h - Porter stemming algorithm ---------*- C++ -*-===//
///
/// \file
/// The classic Porter (1980) suffix-stripping stemmer. The WordToAPI
/// matcher stems both query words and API-description words so that
/// "matching", "matches" and "match" coincide, which is how the
/// NLU-driven approach links query vocabulary to API documents without
/// training data.
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_TEXT_PORTERSTEMMER_H
#define DGGT_TEXT_PORTERSTEMMER_H

#include <string>
#include <string_view>

namespace dggt {

/// Returns the Porter stem of \p Word. Expects lower-case ASCII input;
/// words shorter than three characters are returned unchanged.
std::string porterStem(std::string_view Word);

} // namespace dggt

#endif // DGGT_TEXT_PORTERSTEMMER_H
