//===- text/PorterStemmer.cpp - Porter stemming algorithm -----------------===//
//
// Implements M. F. Porter, "An algorithm for suffix stripping", Program
// 14(3), 1980. The structure below follows the original paper's step
// numbering (1a, 1b, 1c, 2, 3, 4, 5a, 5b).
//
//===----------------------------------------------------------------------===//

#include "text/PorterStemmer.h"

#include <cassert>

using namespace dggt;

namespace {

/// Working buffer plus the measure/vowel predicates of Porter's paper.
class Stemmer {
public:
  explicit Stemmer(std::string Word) : B(std::move(Word)) {}

  std::string run() {
    if (B.size() <= 2)
      return B;
    step1a();
    step1b();
    step1c();
    step2();
    step3();
    step4();
    step5a();
    step5b();
    return B;
  }

private:
  std::string B;

  static bool isVowelChar(char C) {
    return C == 'a' || C == 'e' || C == 'i' || C == 'o' || C == 'u';
  }

  /// True if B[I] is a consonant per Porter's definition ('y' is a
  /// consonant when it follows a vowel position's consonant).
  bool isConsonant(size_t I) const {
    char C = B[I];
    if (isVowelChar(C))
      return false;
    if (C == 'y')
      return I == 0 ? true : !isConsonant(I - 1);
    return true;
  }

  /// Porter's measure m of the prefix B[0..End): the number of VC
  /// alternations [C](VC)^m[V].
  unsigned measure(size_t End) const {
    unsigned M = 0;
    size_t I = 0;
    while (I < End && isConsonant(I))
      ++I;
    while (true) {
      if (I >= End)
        return M;
      while (I < End && !isConsonant(I))
        ++I;
      if (I >= End)
        return M;
      ++M;
      while (I < End && isConsonant(I))
        ++I;
    }
  }

  bool hasVowel(size_t End) const {
    for (size_t I = 0; I < End; ++I)
      if (!isConsonant(I))
        return true;
    return false;
  }

  bool endsWith(std::string_view Suffix) const {
    return B.size() >= Suffix.size() &&
           std::string_view(B).substr(B.size() - Suffix.size()) == Suffix;
  }

  /// Length of the stem if \p Suffix were removed.
  size_t stemLen(std::string_view Suffix) const {
    assert(endsWith(Suffix) && "suffix mismatch");
    return B.size() - Suffix.size();
  }

  bool doubleConsonant() const {
    size_t N = B.size();
    if (N < 2 || B[N - 1] != B[N - 2])
      return false;
    return isConsonant(N - 1);
  }

  /// cvc test at the end of the stem of length \p End, where the final c is
  /// not w, x or y; signals that an 'e' should be restored.
  bool cvc(size_t End) const {
    if (End < 3)
      return false;
    if (!isConsonant(End - 3) || isConsonant(End - 2) || !isConsonant(End - 1))
      return false;
    char C = B[End - 1];
    return C != 'w' && C != 'x' && C != 'y';
  }

  /// Replaces \p Suffix with \p Repl if measure(stem) > \p MinMeasure.
  bool replace(std::string_view Suffix, std::string_view Repl,
               unsigned MinMeasure) {
    if (!endsWith(Suffix))
      return false;
    size_t Stem = stemLen(Suffix);
    if (measure(Stem) <= MinMeasure)
      return true; // Matched but condition failed: stop scanning suffixes.
    B.resize(Stem);
    B += Repl;
    return true;
  }

  void step1a() {
    if (endsWith("sses")) {
      B.resize(B.size() - 2);
    } else if (endsWith("ies")) {
      B.resize(B.size() - 2);
    } else if (endsWith("ss")) {
      // Keep.
    } else if (endsWith("s") && B.size() > 1) {
      B.pop_back();
    }
  }

  void step1b() {
    if (endsWith("eed")) {
      if (measure(stemLen("eed")) > 0)
        B.pop_back();
      return;
    }
    bool Stripped = false;
    if (endsWith("ed") && hasVowel(stemLen("ed"))) {
      B.resize(stemLen("ed"));
      Stripped = true;
    } else if (endsWith("ing") && hasVowel(stemLen("ing"))) {
      B.resize(stemLen("ing"));
      Stripped = true;
    }
    if (!Stripped)
      return;
    if (endsWith("at") || endsWith("bl") || endsWith("iz")) {
      B += 'e';
    } else if (doubleConsonant() && !endsWith("l") && !endsWith("s") &&
               !endsWith("z")) {
      B.pop_back();
    } else if (measure(B.size()) == 1 && cvc(B.size())) {
      B += 'e';
    }
  }

  void step1c() {
    if (endsWith("y") && hasVowel(B.size() - 1))
      B.back() = 'i';
  }

  void step2() {
    // Pairs ordered per Porter's paper; condition is m > 0.
    static const struct {
      const char *From, *To;
    } Rules[] = {
        {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
        {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
        {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
        {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
        {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
        {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
        {"iviti", "ive"},   {"biliti", "ble"},
    };
    for (const auto &R : Rules)
      if (replace(R.From, R.To, 0))
        return;
  }

  void step3() {
    static const struct {
      const char *From, *To;
    } Rules[] = {
        {"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
        {"ical", "ic"},  {"ful", ""},   {"ness", ""},
    };
    for (const auto &R : Rules)
      if (replace(R.From, R.To, 0))
        return;
  }

  void step4() {
    static const char *Suffixes[] = {
        "al",   "ance", "ence", "er",  "ic",  "able", "ible", "ant",  "ement",
        "ment", "ent",  "ou",   "ism", "ate", "iti",  "ous",  "ive",  "ize",
    };
    for (const char *Suffix : Suffixes) {
      if (!endsWith(Suffix))
        continue;
      if (measure(stemLen(Suffix)) > 1)
        B.resize(stemLen(Suffix));
      return;
    }
    // "(s|t)ion" with m > 1.
    if (endsWith("ion")) {
      size_t Stem = stemLen("ion");
      if (Stem > 0 && (B[Stem - 1] == 's' || B[Stem - 1] == 't') &&
          measure(Stem) > 1)
        B.resize(Stem);
    }
  }

  void step5a() {
    if (!endsWith("e"))
      return;
    size_t Stem = B.size() - 1;
    unsigned M = measure(Stem);
    if (M > 1 || (M == 1 && !cvc(Stem)))
      B.pop_back();
  }

  void step5b() {
    if (endsWith("ll") && measure(B.size()) > 1)
      B.pop_back();
  }
};

} // namespace

std::string dggt::porterStem(std::string_view Word) {
  return Stemmer(std::string(Word)).run();
}
