//===- text/PosTagger.h - Rule/lexicon POS tagger ---------------*- C++ -*-===//
///
/// \file
/// Part-of-speech tagging for NL queries. The query-graph pruning step
/// (step 2 of the HISyn pipeline) keeps content words and drops function
/// words based on POS, so the tagger only needs the coarse tag set below.
///
/// This is the deterministic stand-in for the external NLP toolkit the
/// paper wraps (see DESIGN.md, substitutions): a curated lexicon of the
/// query-domain vocabulary plus common English function words, with
/// suffix heuristics and local context repair for out-of-lexicon words.
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_TEXT_POSTAGGER_H
#define DGGT_TEXT_POSTAGGER_H

#include "text/Tokenizer.h"

#include <string_view>
#include <vector>

namespace dggt {

/// Coarse part-of-speech tags (Universal-Dependencies-style granularity).
enum class Pos {
  Verb,
  Noun,
  Adjective,
  Adverb,
  Determiner,
  Preposition,
  Pronoun,
  Conjunction,
  Auxiliary,
  Number,
  Literal,
  Punct,
  Other,
};

/// Returns a short human-readable name for \p P ("VERB", "NOUN", ...).
std::string_view posName(Pos P);

/// A token annotated with its part of speech.
struct TaggedToken {
  Token Tok;
  Pos Tag = Pos::Other;
};

/// Tags \p Tokens. Deterministic; never fails.
///
/// Tagging proceeds in three passes: lexicon lookup, suffix heuristics for
/// unknown words, then local context repair (imperative first verb,
/// noun after determiner, verb after "to", participle after noun).
std::vector<TaggedToken> tagTokens(const std::vector<Token> &Tokens);

} // namespace dggt

#endif // DGGT_TEXT_POSTAGGER_H
