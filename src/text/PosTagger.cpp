//===- text/PosTagger.cpp - Rule/lexicon POS tagger -----------------------===//

#include "text/PosTagger.h"

#include "support/StringUtils.h"

#include <unordered_map>
#include <unordered_set>

using namespace dggt;

std::string_view dggt::posName(Pos P) {
  switch (P) {
  case Pos::Verb:
    return "VERB";
  case Pos::Noun:
    return "NOUN";
  case Pos::Adjective:
    return "ADJ";
  case Pos::Adverb:
    return "ADV";
  case Pos::Determiner:
    return "DET";
  case Pos::Preposition:
    return "ADP";
  case Pos::Pronoun:
    return "PRON";
  case Pos::Conjunction:
    return "CONJ";
  case Pos::Auxiliary:
    return "AUX";
  case Pos::Number:
    return "NUM";
  case Pos::Literal:
    return "LIT";
  case Pos::Punct:
    return "PUNCT";
  case Pos::Other:
    return "X";
  }
  return "X";
}

namespace {

/// Lexicon of the editing / code-analysis query vocabulary plus common
/// English function words. Words absent here fall back to suffix rules.
const std::unordered_map<std::string_view, Pos> &lexicon() {
  static const std::unordered_map<std::string_view, Pos> Lex = {
      // Imperative command verbs used across both domains.
      {"insert", Pos::Verb},      {"add", Pos::Verb},
      {"append", Pos::Verb},      {"prepend", Pos::Verb},
      {"put", Pos::Verb},         {"place", Pos::Verb},
      {"delete", Pos::Verb},      {"remove", Pos::Verb},
      {"erase", Pos::Verb},       {"drop", Pos::Verb},
      {"strip", Pos::Verb},       {"clear", Pos::Verb},
      {"replace", Pos::Verb},     {"substitute", Pos::Verb},
      {"change", Pos::Verb},      {"swap", Pos::Verb},
      {"convert", Pos::Verb},     {"turn", Pos::Verb},
      {"copy", Pos::Verb},        {"duplicate", Pos::Verb},
      {"move", Pos::Verb},        {"select", Pos::Verb},
      {"highlight", Pos::Verb},   {"print", Pos::Verb},
      {"show", Pos::Verb},        {"find", Pos::Verb},
      {"search", Pos::Verb},      {"serach", Pos::Verb}, // Paper's own typo.
      {"list", Pos::Verb},        {"locate", Pos::Verb},
      {"match", Pos::Verb},       {"merge", Pos::Verb},
      {"join", Pos::Verb},        {"split", Pos::Verb},
      {"sort", Pos::Verb},        {"count", Pos::Verb},
      {"capitalize", Pos::Verb},  {"uppercase", Pos::Verb},
      {"lowercase", Pos::Verb},   {"trim", Pos::Verb},
      {"wrap", Pos::Verb},        {"indent", Pos::Verb},
      {"extract", Pos::Verb},     {"keep", Pos::Verb},

      // Domain verbs that appear in relative clauses.
      {"is", Pos::Auxiliary},     {"are", Pos::Auxiliary},
      {"be", Pos::Auxiliary},     {"been", Pos::Auxiliary},
      {"was", Pos::Auxiliary},    {"do", Pos::Auxiliary},
      {"does", Pos::Auxiliary},   {"can", Pos::Auxiliary},
      {"should", Pos::Auxiliary}, {"would", Pos::Auxiliary},
      {"will", Pos::Auxiliary},

      {"contain", Pos::Verb},     {"contains", Pos::Verb},
      {"containing", Pos::Verb},  {"include", Pos::Verb},
      {"includes", Pos::Verb},    {"including", Pos::Verb},
      {"have", Pos::Verb},        {"has", Pos::Verb},
      {"having", Pos::Verb},      {"start", Pos::Verb},
      {"starts", Pos::Verb},      {"starting", Pos::Verb},
      {"begin", Pos::Verb},       {"begins", Pos::Verb},
      {"end", Pos::Verb},         {"ends", Pos::Verb},
      {"ending", Pos::Verb},      {"call", Pos::Verb},
      {"calls", Pos::Verb},       {"called", Pos::Verb},
      {"declare", Pos::Verb},     {"declares", Pos::Verb},
      {"declared", Pos::Verb},    {"define", Pos::Verb},
      {"defines", Pos::Verb},     {"defined", Pos::Verb},
      {"name", Pos::Verb},        {"named", Pos::Verb},
      {"reference", Pos::Verb},   {"references", Pos::Verb},
      {"refer", Pos::Verb},       {"refers", Pos::Verb},
      {"return", Pos::Verb},      {"returns", Pos::Verb},
      {"returning", Pos::Verb},   {"take", Pos::Verb},
      {"takes", Pos::Verb},       {"taking", Pos::Verb},
      {"use", Pos::Verb},         {"uses", Pos::Verb},
      {"using", Pos::Verb},       {"occur", Pos::Verb},
      {"occurs", Pos::Verb},      {"appear", Pos::Verb},
      {"appears", Pos::Verb},     {"override", Pos::Verb},
      {"overrides", Pos::Verb},   {"inherit", Pos::Verb},
      {"inherits", Pos::Verb},    {"derive", Pos::Verb},
      {"derives", Pos::Verb},     {"derived", Pos::Verb},
      {"accept", Pos::Verb},      {"accepts", Pos::Verb},
      {"bind", Pos::Verb},        {"binds", Pos::Verb},

      // Nouns of the text-editing domain.
      {"string", Pos::Noun},      {"strings", Pos::Noun},
      {"line", Pos::Noun},        {"lines", Pos::Noun},
      {"word", Pos::Noun},        {"words", Pos::Noun},
      {"character", Pos::Noun},   {"characters", Pos::Noun},
      {"char", Pos::Noun},        {"chars", Pos::Noun},
      {"letter", Pos::Noun},      {"letters", Pos::Noun},
      {"sentence", Pos::Noun},    {"sentences", Pos::Noun},
      {"paragraph", Pos::Noun},   {"paragraphs", Pos::Noun},
      {"document", Pos::Noun},    {"text", Pos::Noun},
      {"number", Pos::Noun},      {"numbers", Pos::Noun},
      {"numeral", Pos::Noun},     {"numerals", Pos::Noun},
      {"digit", Pos::Noun},       {"digits", Pos::Noun},
      {"space", Pos::Noun},       {"spaces", Pos::Noun},
      {"whitespace", Pos::Noun},  {"tab", Pos::Noun},
      {"tabs", Pos::Noun},        {"comma", Pos::Noun},
      {"commas", Pos::Noun},      {"colon", Pos::Noun},
      {"semicolon", Pos::Noun},   {"period", Pos::Noun},
      {"dot", Pos::Noun},         {"dash", Pos::Noun},
      {"hyphen", Pos::Noun},      {"quote", Pos::Noun},
      {"bracket", Pos::Noun},     {"parenthesis", Pos::Noun},
      {"occurrence", Pos::Noun},  {"occurrences", Pos::Noun},
      {"instance", Pos::Noun},    {"instances", Pos::Noun},
      {"beginning", Pos::Noun},   {"front", Pos::Noun},
      {"middle", Pos::Noun},      {"position", Pos::Noun},
      {"positions", Pos::Noun},   {"token", Pos::Noun},
      {"tokens", Pos::Noun},      {"caret", Pos::Noun},
      {"cursor", Pos::Noun},      {"selection", Pos::Noun},
      {"clipboard", Pos::Noun},   {"case", Pos::Noun},
      {"time", Pos::Noun},        {"times", Pos::Noun},

      // Nouns of the code-analysis domain.
      {"expression", Pos::Noun},  {"expressions", Pos::Noun},
      {"statement", Pos::Noun},   {"statements", Pos::Noun},
      {"declaration", Pos::Noun}, {"declarations", Pos::Noun},
      {"function", Pos::Noun},    {"functions", Pos::Noun},
      {"method", Pos::Noun},      {"methods", Pos::Noun},
      {"constructor", Pos::Noun}, {"constructors", Pos::Noun},
      {"destructor", Pos::Noun},  {"destructors", Pos::Noun},
      {"variable", Pos::Noun},    {"variables", Pos::Noun},
      {"field", Pos::Noun},       {"fields", Pos::Noun},
      {"member", Pos::Noun},      {"members", Pos::Noun},
      {"parameter", Pos::Noun},   {"parameters", Pos::Noun},
      {"argument", Pos::Noun},    {"arguments", Pos::Noun},
      {"class", Pos::Noun},       {"classes", Pos::Noun},
      {"struct", Pos::Noun},      {"structs", Pos::Noun},
      {"record", Pos::Noun},      {"records", Pos::Noun},
      {"enum", Pos::Noun},        {"enums", Pos::Noun},
      {"namespace", Pos::Noun},   {"namespaces", Pos::Noun},
      {"template", Pos::Noun},    {"templates", Pos::Noun},
      {"type", Pos::Noun},        {"types", Pos::Noun},
      {"typedef", Pos::Noun},     {"typedefs", Pos::Noun},
      {"pointer", Pos::Noun},     {"pointers", Pos::Noun},
      {"array", Pos::Noun},       {"arrays", Pos::Noun},
      {"loop", Pos::Noun},        {"loops", Pos::Noun},
      {"operator", Pos::Noun},    {"operators", Pos::Noun},
      {"operand", Pos::Noun},     {"operands", Pos::Noun},
      {"literal", Pos::Noun},     {"literals", Pos::Noun},
      {"integer", Pos::Noun},     {"integers", Pos::Noun},
      {"float", Pos::Noun},       {"floats", Pos::Noun},
      {"bool", Pos::Noun},        {"boolean", Pos::Noun},
      {"cast", Pos::Noun},        {"casts", Pos::Noun},
      {"condition", Pos::Noun},   {"conditions", Pos::Noun},
      {"body", Pos::Noun},        {"bodies", Pos::Noun},
      {"initializer", Pos::Noun}, {"initializers", Pos::Noun},
      {"base", Pos::Noun},        {"bases", Pos::Noun},
      {"lambda", Pos::Noun},      {"lambdas", Pos::Noun},
      {"label", Pos::Noun},       {"labels", Pos::Noun},
      {"value", Pos::Noun},       {"values", Pos::Noun},
      {"callee", Pos::Noun},      {"caller", Pos::Noun},

      // Adjectives.
      {"new", Pos::Adjective},     {"empty", Pos::Adjective},
      {"blank", Pos::Adjective},   {"first", Pos::Adjective},
      {"last", Pos::Adjective},    {"second", Pos::Adjective},
      {"third", Pos::Adjective},   {"next", Pos::Adjective},
      {"previous", Pos::Adjective},{"upper", Pos::Adjective},
      {"lower", Pos::Adjective},   {"virtual", Pos::Adjective},
      {"const", Pos::Adjective},   {"constant", Pos::Adjective},
      {"static", Pos::Adjective},  {"public", Pos::Adjective},
      {"private", Pos::Adjective}, {"protected", Pos::Adjective},
      {"pure", Pos::Adjective},    {"default", Pos::Adjective},
      {"implicit", Pos::Adjective},{"explicit", Pos::Adjective},
      {"unsigned", Pos::Adjective},{"signed", Pos::Adjective},
      {"binary", Pos::Adjective},  {"unary", Pos::Adjective},
      {"floating", Pos::Adjective},{"ternary", Pos::Adjective},
      {"variadic", Pos::Adjective},{"inline", Pos::Adjective},
      {"constexpr", Pos::Adjective},{"abstract", Pos::Adjective},
      {"polymorphic", Pos::Adjective},{"final", Pos::Adjective},
      {"prefix", Pos::Adjective},  {"postfix", Pos::Adjective},
      {"deleted", Pos::Adjective}, {"defaulted", Pos::Adjective},
      {"anonymous", Pos::Adjective},{"trivial", Pos::Adjective},
      {"scoped", Pos::Adjective},  {"weak", Pos::Adjective},
      {"mutable", Pos::Adjective}, {"noexcept", Pos::Adjective},
      {"cxx", Pos::Adjective},     {"numeric", Pos::Adjective},
      {"whole", Pos::Adjective},   {"entire", Pos::Adjective},
      {"single", Pos::Adjective},  {"global", Pos::Adjective},
      {"local", Pos::Adjective},   {"main", Pos::Adjective},

      // Determiners / quantifiers.
      {"a", Pos::Determiner},      {"an", Pos::Determiner},
      {"the", Pos::Determiner},    {"this", Pos::Determiner},
      {"that", Pos::Determiner},   {"these", Pos::Determiner},
      {"those", Pos::Determiner},  {"each", Pos::Determiner},
      {"every", Pos::Determiner},  {"all", Pos::Determiner},
      {"any", Pos::Determiner},    {"some", Pos::Determiner},
      {"no", Pos::Determiner},     {"its", Pos::Determiner},

      // Prepositions.
      {"at", Pos::Preposition},    {"in", Pos::Preposition},
      {"on", Pos::Preposition},    {"of", Pos::Preposition},
      {"to", Pos::Preposition},    {"from", Pos::Preposition},
      {"with", Pos::Preposition},  {"without", Pos::Preposition},
      {"into", Pos::Preposition},  {"onto", Pos::Preposition},
      {"by", Pos::Preposition},    {"before", Pos::Preposition},
      {"after", Pos::Preposition}, {"inside", Pos::Preposition},
      {"within", Pos::Preposition},{"between", Pos::Preposition},
      {"under", Pos::Preposition}, {"over", Pos::Preposition},
      {"per", Pos::Preposition},   {"as", Pos::Preposition},
      {"for", Pos::Preposition},  {"off", Pos::Preposition},

      // Pronouns / relativizers.
      {"it", Pos::Pronoun},        {"they", Pos::Pronoun},
      {"them", Pos::Pronoun},      {"which", Pos::Pronoun},
      {"whose", Pos::Pronoun},     {"who", Pos::Pronoun},
      {"what", Pos::Pronoun},      {"where", Pos::Pronoun},

      // Conjunctions.
      {"and", Pos::Conjunction},   {"or", Pos::Conjunction},
      {"but", Pos::Conjunction},   {"if", Pos::Conjunction},
      {"when", Pos::Conjunction},  {"then", Pos::Conjunction},
      {"so", Pos::Conjunction},    {"than", Pos::Conjunction},

      // Adverbs.
      {"not", Pos::Adverb},        {"only", Pos::Adverb},
      {"also", Pos::Adverb},       {"directly", Pos::Adverb},
      {"exactly", Pos::Adverb},    {"immediately", Pos::Adverb},
      {"once", Pos::Adverb},       {"twice", Pos::Adverb},
      {"again", Pos::Adverb},      {"too", Pos::Adverb},
  };
  return Lex;
}

Pos suffixGuess(std::string_view Word) {
  if (endsWith(Word, "ing") || endsWith(Word, "ed"))
    return Pos::Verb;
  if (endsWith(Word, "ly"))
    return Pos::Adverb;
  if (endsWith(Word, "tion") || endsWith(Word, "sion") ||
      endsWith(Word, "ment") || endsWith(Word, "ness") ||
      endsWith(Word, "ance") || endsWith(Word, "ence") ||
      endsWith(Word, "ity") || endsWith(Word, "or") || endsWith(Word, "er"))
    return Pos::Noun;
  if (endsWith(Word, "al") || endsWith(Word, "ive") || endsWith(Word, "ous") ||
      endsWith(Word, "able") || endsWith(Word, "ible") ||
      endsWith(Word, "ic"))
    return Pos::Adjective;
  return Pos::Noun;
}

} // namespace

std::vector<TaggedToken> dggt::tagTokens(const std::vector<Token> &Tokens) {
  std::vector<TaggedToken> Tagged;
  Tagged.reserve(Tokens.size());

  // Pass 1: lexicon + per-kind defaults + suffix rules.
  for (const Token &T : Tokens) {
    TaggedToken TT;
    TT.Tok = T;
    switch (T.Kind) {
    case TokenKind::Number:
      TT.Tag = Pos::Number;
      break;
    case TokenKind::Literal:
      TT.Tag = Pos::Literal;
      break;
    case TokenKind::Punct:
      TT.Tag = Pos::Punct;
      break;
    case TokenKind::Word: {
      auto It = lexicon().find(T.Text);
      TT.Tag = It != lexicon().end() ? It->second : suffixGuess(T.Text);
      break;
    }
    }
    Tagged.push_back(std::move(TT));
  }

  // Pass 2: local context repair.
  for (size_t I = 0; I < Tagged.size(); ++I) {
    TaggedToken &TT = Tagged[I];
    if (TT.Tok.Kind != TokenKind::Word)
      continue;

    // Words that can be verb or noun: "name"/"end"/"start"/... After a
    // determiner or preposition they are nouns ("at the start", "of each
    // line"); sentence-initially they are imperative verbs.
    bool PrevIsDetOrPrep = false;
    if (I > 0) {
      Pos Prev = Tagged[I - 1].Tag;
      PrevIsDetOrPrep = Prev == Pos::Determiner || Prev == Pos::Preposition ||
                        Prev == Pos::Adjective;
    }
    if (TT.Tag == Pos::Verb && PrevIsDetOrPrep) {
      // "the start", "each match", "at the end" -> noun reading.
      TT.Tag = Pos::Noun;
    }
    if (TT.Tag == Pos::Noun && I == 0) {
      // Imperative queries start with a verb; recover "copy"/"sort"/... if
      // the lexicon preferred the noun reading.
      TT.Tag = Pos::Verb;
    }
  }
  return Tagged;
}
