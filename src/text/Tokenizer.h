//===- text/Tokenizer.h - Query tokenizer -----------------------*- C++ -*-===//
///
/// \file
/// Splits an NL query into tokens. Quoted spans ('...' or "...") become
/// single Literal tokens so user-supplied strings such as ":" in
/// `append ":" in every line` survive verbatim into the synthesized
/// codelet (e.g. `INSERT(STRING(:), ...)`).
///
//===----------------------------------------------------------------------===//

#ifndef DGGT_TEXT_TOKENIZER_H
#define DGGT_TEXT_TOKENIZER_H

#include <string>
#include <string_view>
#include <vector>

namespace dggt {

/// Lexical category assigned by the tokenizer (pre-POS-tagging).
enum class TokenKind {
  Word,    ///< Alphabetic word, lower-cased.
  Number,  ///< Decimal integer, e.g. "14".
  Literal, ///< Quoted span, quotes stripped, case preserved.
  Punct,   ///< Single punctuation character.
};

/// One token of the query with its original surface form.
struct Token {
  TokenKind Kind;
  /// Normalized text: lower-cased for words, verbatim for literals.
  std::string Text;
  /// Position (token index) in the query.
  unsigned Index = 0;
};

/// Tokenizes \p Query. Never fails: unrecognized bytes become Punct tokens.
std::vector<Token> tokenize(std::string_view Query);

} // namespace dggt

#endif // DGGT_TEXT_TOKENIZER_H
